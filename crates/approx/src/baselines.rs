//! Baselines the paper positions itself against.
//!
//! * **Variable independence** (Chomicki–Goldin–Kuper \[11\], discussed in
//!   §1): if the constraint representation never mixes variables inside an
//!   atom, the exact volume is expressible in the constraint language
//!   itself. The condition is syntactic, easily checked — and, as the
//!   paper notes, "too restrictive": [`is_variable_independent`] plus
//!   [`variable_independent_volume`] implement the baseline, and E8
//!   measures how rarely it applies.
//! * **Dyer–Frieze–Kannan-style randomized volume** \[15\]: polynomial-time
//!   approximation for convex bodies. We implement the practical
//!   scaffolding (rejection sampling from a bounding box, and a multiphase
//!   hit-and-run annealing estimator) as the comparison point for E11.

use cqa_arith::Rat;
use cqa_geom::HPolyhedron;
use cqa_logic::{Atom, CompiledMatrix, Formula, Rel, SlotMap};
use cqa_poly::{MPoly, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `true` iff every atom of the (quantifier-free, relation-free) formula
/// mentions at most one variable — the variable-independence condition.
pub fn is_variable_independent(f: &Formula) -> bool {
    let mut ok = true;
    f.visit(&mut |g| {
        if let Formula::Atom(a) = g {
            if a.poly.vars().len() > 1 {
                ok = false;
            }
        }
    });
    ok
}

/// Exact volume of a variable-independent formula: the 1-D critical values
/// per axis induce a grid; each open cell is uniformly in or out, so the
/// volume is a sum of box volumes — no polyhedral machinery needed. This
/// is the \[11\] baseline; it errors (`None`) if the formula is not
/// variable-independent or a contributing cell is unbounded.
pub fn variable_independent_volume(f: &Formula, vars: &[Var]) -> Option<Rat> {
    if !is_variable_independent(f) || !f.is_quantifier_free() || !f.is_relation_free() {
        return None;
    }
    // Critical values per axis: roots of each univariate atom polynomial.
    let mut grids: Vec<Vec<Rat>> = vec![Vec::new(); vars.len()];
    let mut fail = false;
    f.visit(&mut |g| {
        if let Formula::Atom(a) = g {
            let Some(&v) = a.poly.vars().iter().next() else {
                return;
            };
            let Some(idx) = vars.iter().position(|&w| w == v) else {
                fail = true;
                return;
            };
            let Some(up) = a.poly.to_upoly(v) else {
                fail = true;
                return;
            };
            for r in cqa_poly::isolate_real_roots(&up) {
                if r.is_exact() {
                    if !grids[idx].contains(&r.lo) {
                        grids[idx].push(r.lo.clone());
                    }
                } else {
                    // Irrational critical value: outside this baseline's
                    // exact-rational scope.
                    fail = true;
                }
            }
        }
    });
    if fail {
        return None;
    }
    for g in &mut grids {
        g.sort();
    }
    // Cell sample points and widths per axis: between consecutive critical
    // values (cells at ±∞ have unbounded width — any true cell there makes
    // the volume unbounded).
    #[derive(Clone)]
    struct Cell {
        sample: Rat,
        width: Option<Rat>, // None = unbounded
    }
    let mut axes: Vec<Vec<Cell>> = Vec::with_capacity(vars.len());
    for g in &grids {
        let mut cells = Vec::new();
        if g.is_empty() {
            cells.push(Cell {
                sample: Rat::zero(),
                width: None,
            });
        } else {
            cells.push(Cell {
                sample: &g[0] - Rat::one(),
                width: None,
            });
            for (i, x) in g.iter().enumerate() {
                cells.push(Cell {
                    sample: x.clone(),
                    width: Some(Rat::zero()),
                });
                if i + 1 < g.len() {
                    cells.push(Cell {
                        sample: x.midpoint(&g[i + 1]),
                        width: Some(&g[i + 1] - x),
                    });
                }
            }
            cells.push(Cell {
                sample: g.last().unwrap() + Rat::one(),
                width: None,
            });
        }
        axes.push(cells);
    }
    // Sweep the grid through the compiled kernel (one lowering, then a
    // cheap exact evaluation per cell; compilation failure means the
    // formula is outside this baseline's scope).
    let slots = SlotMap::from_vars(vars);
    let kernel = CompiledMatrix::compile(f, &slots).ok()?;
    let mut idx = vec![0usize; vars.len()];
    let mut total = Rat::zero();
    let mut point = vec![Rat::zero(); vars.len()];
    loop {
        let mut cellvol = Some(Rat::one());
        for (ax, &i) in axes.iter().zip(&idx) {
            cellvol = match (&cellvol, &ax[i].width) {
                (Some(v), Some(w)) => Some(v * w),
                _ => None,
            };
        }
        for (c, (ax, &i)) in point.iter_mut().zip(axes.iter().zip(&idx)) {
            c.clone_from(&ax[i].sample);
        }
        if kernel.eval_rats(&point) {
            match cellvol {
                Some(v) => total += v,
                None => return None, // true on an unbounded cell
            }
        }
        // Odometer.
        let mut k = 0;
        loop {
            if k == idx.len() {
                return Some(total);
            }
            idx[k] += 1;
            if idx[k] < axes[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

/// Rejection-sampling volume of a polyhedron from an enclosing box
/// (the naive Monte Carlo baseline). Membership runs through the compiled
/// kernel — `f64` sign decision with a certified error bound, exact
/// rational fallback only on uncertain signs — so the hit count is
/// identical to testing `p.contains` at the exact rational points.
pub fn rejection_volume(p: &HPolyhedron, lo: &[f64], hi: &[f64], samples: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = p.dim();
    // Lower `∧ᵢ aᵢ·x − bᵢ ≤ 0` over fresh slot variables.
    let vars: Vec<Var> = (0..d as u32).map(Var).collect();
    let atoms: Vec<Formula> = p
        .rows()
        .iter()
        .map(|(a, b)| {
            let mut poly = MPoly::constant(-b);
            for (c, &v) in a.iter().zip(&vars) {
                poly = &poly + &(&MPoly::constant(c.clone()) * &MPoly::var(v));
            }
            Formula::Atom(Atom::new(poly, Rel::Le))
        })
        .collect();
    let slots = SlotMap::from_vars(&vars);
    let kernel = CompiledMatrix::compile(&Formula::And(atoms), &slots)
        .expect("polyhedron rows always compile");
    let mut hits = 0usize;
    let mut box_vol = 1.0;
    for i in 0..d {
        box_vol *= hi[i] - lo[i];
    }
    // Batched sweep: fill one structure-of-arrays batch per block of
    // samples (draws stay lane-major — point by point, coordinate by
    // coordinate — so the sample sequence matches the per-point loop this
    // replaces) and decide all lanes in one kernel pass.
    let mut batch = cqa_logic::Batch::new(d);
    let mut scratch = cqa_logic::BatchScratch::new();
    let mut done = 0usize;
    while done < samples {
        let len = (samples - done).min(cqa_logic::BATCH_LANES);
        batch.set_len(len);
        for lane in 0..len {
            for i in 0..d {
                batch.col_mut(i)[lane] = rng.random_range(lo[i]..hi[i]);
            }
        }
        let b = &batch;
        let exact = |lane: usize, slot: usize| Rat::from_f64(b.value(slot, lane)).expect("finite");
        hits += kernel.eval_batch(b, &exact, &mut scratch).mask.count();
        done += len;
    }
    box_vol * hits as f64 / samples as f64
}

/// A Dyer–Frieze–Kannan-flavoured multiphase estimator for convex
/// polytopes: intersect the body `K` with a geometric sequence of balls
/// `B₀ ⊂ B₁ ⊂ … ⊂ B_k ⊇ K` centered at an interior point; then
/// `vol(K) = vol(B₀) / Π ᵢ ratioᵢ`, with each
/// `ratioᵢ = vol(K∩Bᵢ₋₁)/vol(K∩Bᵢ)` estimated by hit-and-run sampling of
/// `K∩Bᵢ` (exact chord computation against the half-spaces and the ball).
/// `f64`, seeded — the E11 cost/accuracy comparison point; not a verbatim
/// implementation of \[15\]'s theoretical algorithm.
pub fn hit_and_run_volume(
    p: &HPolyhedron,
    interior: &[f64],
    samples_per_phase: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let d = p.dim();
    // Half-spaces as f64 rows a·x ≤ b.
    let rows: Vec<(Vec<f64>, f64)> = p
        .rows()
        .iter()
        .map(|(a, b)| (a.iter().map(Rat::to_f64).collect(), b.to_f64()))
        .collect();
    let c = interior.to_vec();
    // Inradius at c and circumradius bound via the rows (crude: use the
    // chord extents along the coordinate axes for an outer radius).
    let mut r0 = f64::MAX;
    for (a, b) in &rows {
        let norm: f64 = a.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-12 {
            let slack = (b - dot(a, &c)) / norm;
            r0 = r0.min(slack);
        }
    }
    if r0.is_nan() || r0 <= 0.0 || r0 == f64::MAX {
        return 0.0; // interior point not strictly inside, or free space
    }
    r0 *= 0.95;
    // Outer radius: walk out along ±each axis to the body boundary.
    let mut router = r0;
    for i in 0..d {
        for sgn in [-1.0, 1.0] {
            let mut u = vec![0.0; d];
            u[i] = sgn;
            let (_, thi) = chord(&rows, &c, &u, f64::MAX, &c);
            if thi.is_finite() {
                router = router.max(thi);
            }
        }
    }
    router *= (d as f64).sqrt() * 1.05; // cover skew corners
    let phases = ((router / r0).log2().ceil() as usize).max(1);

    let ball_vol = crate::john::unit_ball_volume(d) * r0.powi(d as i32);
    let mut logvol = ball_vol.ln();
    let mut x = c.clone();
    for i in 1..=phases {
        let r_small = r0 * 2f64.powi(i as i32 - 1);
        let r_big = (r0 * 2f64.powi(i as i32)).min(router);
        let mut hits = 0usize;
        let mut total = 0usize;
        for _ in 0..samples_per_phase {
            // Hit-and-run step in K ∩ B(c, r_big).
            let mut u: Vec<f64> = (0..d).map(|_| rng.random_range(-1.0f64..1.0)).collect();
            let norm = dot(&u, &u).sqrt();
            if norm < 1e-9 {
                continue;
            }
            for v in u.iter_mut() {
                *v /= norm;
            }
            let (tlo, thi) = chord(&rows, &x, &u, r_big, &c);
            if thi.is_nan() || tlo.is_nan() || thi <= tlo {
                continue;
            }
            let t = rng.random_range(tlo..thi);
            for (xi, ui) in x.iter_mut().zip(&u) {
                *xi += ui * t;
            }
            total += 1;
            let dist2: f64 = x.iter().zip(&c).map(|(a, b)| (a - b) * (a - b)).sum();
            if dist2 <= r_small * r_small {
                hits += 1;
            }
        }
        if total == 0 {
            return 0.0;
        }
        let ratio = (hits.max(1)) as f64 / total as f64;
        logvol -= ratio.ln();
    }
    logvol.exp()
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// The parameter interval `[tlo, thi]` of `{x + t·u}` inside the body
/// `∩ rows ∩ B(center, r)` (`u` unit length; `r = MAX` skips the ball).
fn chord(rows: &[(Vec<f64>, f64)], x: &[f64], u: &[f64], r: f64, center: &[f64]) -> (f64, f64) {
    let mut tlo = f64::NEG_INFINITY;
    let mut thi = f64::INFINITY;
    for (a, b) in rows {
        let au = dot(a, u);
        let slack = b - dot(a, x);
        if au.abs() < 1e-12 {
            if slack < 0.0 {
                return (0.0, 0.0);
            }
            continue;
        }
        let t = slack / au;
        if au > 0.0 {
            thi = thi.min(t);
        } else {
            tlo = tlo.max(t);
        }
    }
    if r.is_finite() {
        // |x + tu − center|² = r²: t² + 2·w·u·t + |w|² − r² = 0, w = x−center.
        let w: Vec<f64> = x.iter().zip(center).map(|(a, b)| a - b).collect();
        let bq = dot(&w, u);
        let cq = dot(&w, &w) - r * r;
        let disc = bq * bq - cq;
        if disc <= 0.0 {
            return (0.0, 0.0);
        }
        let s = disc.sqrt();
        tlo = tlo.max(-bq - s);
        thi = thi.min(-bq + s);
    }
    (tlo, thi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;
    use cqa_logic::{parse_formula_with, VarMap};

    fn parse(src: &str, names: &[&str]) -> (Formula, Vec<Var>) {
        let mut vars = VarMap::new();
        let vs: Vec<Var> = names.iter().map(|n| vars.intern(n)).collect();
        (parse_formula_with(src, &mut vars).unwrap(), vs)
    }

    #[test]
    fn independence_detection() {
        let (f, _) = parse("0 <= x & x <= 1 & 0 <= y & y <= 1", &["x", "y"]);
        assert!(is_variable_independent(&f));
        let (g, _) = parse("x + y <= 1", &["x", "y"]);
        assert!(!is_variable_independent(&g));
    }

    #[test]
    fn vi_volume_boxes() {
        let (f, vs) = parse("0 <= x & x <= 2 & 1 <= y & y <= 4", &["x", "y"]);
        assert_eq!(variable_independent_volume(&f, &vs), Some(rat(6, 1)));
        // Union of boxes sharing structure.
        let (g, vs) = parse(
            "(0 <= x & x <= 1 | 2 <= x & x <= 3) & 0 <= y & y <= 1",
            &["x", "y"],
        );
        assert_eq!(variable_independent_volume(&g, &vs), Some(rat(2, 1)));
    }

    #[test]
    fn vi_volume_agrees_with_exact_engine() {
        let (f, vs) = parse(
            "(0 <= x & x <= 2 & 0 <= y & y <= 2) & !(1 <= x & x <= 2 & 1 <= y & y <= 2)",
            &["x", "y"],
        );
        let vi = variable_independent_volume(&f, &vs).unwrap();
        let exact = cqa_geom::volume(&f, &vs).unwrap();
        assert_eq!(vi, exact);
        assert_eq!(vi, rat(3, 1));
    }

    #[test]
    fn vi_rejects_dependent_and_unbounded() {
        let (f, vs) = parse("x + y <= 1", &["x", "y"]);
        assert_eq!(variable_independent_volume(&f, &vs), None);
        let (g, vs) = parse("x >= 0 & 0 <= y & y <= 1", &["x", "y"]);
        assert_eq!(variable_independent_volume(&g, &vs), None);
    }

    #[test]
    fn rejection_estimates_triangle() {
        let mut vars = VarMap::new();
        let f = parse_formula_with("x >= 0 & y >= 0 & x + y <= 1", &mut vars).unwrap();
        let vs = vec![vars.get("x").unwrap(), vars.get("y").unwrap()];
        let atoms = match f {
            Formula::And(parts) => parts
                .into_iter()
                .map(|p| match p {
                    Formula::Atom(a) => a,
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>(),
            _ => unreachable!(),
        };
        let p = HPolyhedron::from_atoms(&atoms, &vs).unwrap();
        let v = rejection_volume(&p, &[0.0, 0.0], &[1.0, 1.0], 20_000, 3);
        assert!((v - 0.5).abs() < 0.02, "{v}");
    }

    #[test]
    fn hit_and_run_ballpark() {
        let p = HPolyhedron::unit_box(2);
        let v = hit_and_run_volume(&p, &[0.5, 0.5], 6000, 7);
        assert!(v > 0.6 && v < 1.6, "{v}");
    }
}
