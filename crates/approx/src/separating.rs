//! Proposition 1 and Theorem 2, empirically.
//!
//! The impossibility proofs quantify over *all* formulas and cannot be run
//! verbatim; what can be run is (a) the reduction at their heart and (b) a
//! falsification sweep over a bounded family of candidate separating
//! sentences:
//!
//! * [`good_instance_volumes`] executes the Theorem-2 reduction: a *good
//!   instance* (A an initial segment of ℕ, B ⊊ A non-empty) is mapped into
//!   `[0,1]` with equidistant points; `X` is the union of intervals from a
//!   `B`-point to the next `A∖B`-point (or 1), `Y` dually. Then
//!   `VOL(X) + VOL(Y) = 1` and `VOL(X)` tracks `card(B)/card(A)` exactly as
//!   the proof requires — so an ε-approximation of these volumes would
//!   decide the (c₁,c₂)-good sentence problem, which AC⁰ circuits (and
//!   hence FO_act over any signature) cannot do.
//! * [`find_separating_sentence`] enumerates a template family of bounded
//!   FO_act sentences over `⟨U₁, U₂, <⟩` and reports whether any of them
//!   (c₁,c₂)-separates the tested cardinality profile — none does, which is
//!   the checkable shadow of Proposition 1.

use cqa_arith::Rat;
use cqa_geom::volume;
use cqa_logic::Formula;
use cqa_poly::Var;

/// A good instance: `A = {0, …, n−1}`, `B ⊆ A` given by a bit mask.
#[derive(Clone, Debug)]
pub struct GoodInstance {
    /// Size of the initial segment `A`.
    pub n: usize,
    /// Membership mask of `B` (must be non-empty and proper).
    pub b: Vec<bool>,
}

impl GoodInstance {
    /// Constructs and validates a good instance.
    pub fn new(n: usize, b: Vec<bool>) -> Option<GoodInstance> {
        if b.len() != n {
            return None;
        }
        let card = b.iter().filter(|&&x| x).count();
        if card == 0 || card == n {
            return None;
        }
        Some(GoodInstance { n, b })
    }

    /// `card(B)`.
    pub fn card_b(&self) -> usize {
        self.b.iter().filter(|&&x| x).count()
    }
}

/// Executes the Theorem-2 reduction: embeds the instance equidistantly in
/// `[0,1]` and returns `(VOL(X), VOL(Y))` — the volumes whose
/// ε-approximation would yield a (c₁,c₂)-good sentence.
pub fn good_instance_volumes(inst: &GoodInstance) -> (Rat, Rat) {
    let n = inst.n;
    // Point i ↦ i/n; interval blocks run to the next opposite-kind point,
    // or to 1 if none. Build X (from B-points) and Y (from A∖B-points)
    // as formulas over one variable, then take exact volumes.
    let v = Var(0);
    let step = Rat::new(1i64.into(), (n as i64).into());
    let mut x_set = Formula::False;
    let mut y_set = Formula::False;
    for i in 0..n {
        let here = Rat::from(i as i64) * &step;
        // Find the next index of opposite membership.
        let mut nextval: Rat = Rat::one();
        for j in i + 1..n {
            if inst.b[j] != inst.b[i] {
                nextval = Rat::from(j as i64) * &step;
                break;
            }
        }
        let lo = Formula::le(
            cqa_poly::MPoly::constant(here.clone()),
            cqa_poly::MPoly::var(v),
        );
        let hi = Formula::le(
            cqa_poly::MPoly::var(v),
            cqa_poly::MPoly::constant(nextval.clone()),
        );
        let block = lo.and(hi);
        if inst.b[i] {
            x_set = x_set.or(block);
        } else {
            y_set = y_set.or(block);
        }
    }
    let vx = volume(&x_set, &[v]).expect("bounded union of intervals");
    let vy = volume(&y_set, &[v]).expect("bounded union of intervals");
    (vx, vy)
}

/// A bounded family of candidate FO_act sentences over `⟨U₁, U₂, <⟩`,
/// identified by template index. The family covers the boolean
/// combinations of threshold/majority-flavored two-variable active-domain
/// sentences expressible at quantifier depth ≤ 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Candidate {
    /// `∃x∈adom. U₁(x) ∧ ∀y∈adom. (U₂(y) → y < x)` — "some U₁ above all U₂".
    SomeAboveAll,
    /// `∀x∈adom. U₂(x) → ∃y∈adom. U₁(y) ∧ x < y` — "every U₂ has a U₁ above".
    EveryHasAbove,
    /// `∃x∈adom. U₁(x) ∧ ¬U₂(x)` — "U₁ not contained in U₂".
    NotSubset,
    /// `∀x∈adom. U₂(x) → U₁(x)` — "U₂ ⊆ U₁".
    Superset,
    /// `∃x∈adom. U₁(x) ∧ ∃y∈adom. U₂(y) ∧ x < y` — order pattern.
    SomePairOrdered,
    /// The negation of `SomeAboveAll`.
    NegSomeAboveAll,
}

/// All candidates.
pub const CANDIDATES: [Candidate; 6] = [
    Candidate::SomeAboveAll,
    Candidate::EveryHasAbove,
    Candidate::NotSubset,
    Candidate::Superset,
    Candidate::SomePairOrdered,
    Candidate::NegSomeAboveAll,
];

/// Evaluates a candidate on an instance `(U₁, U₂)` of rationals.
pub fn eval_candidate(c: Candidate, u1: &[Rat], u2: &[Rat]) -> bool {
    match c {
        Candidate::SomeAboveAll => u1.iter().any(|x| u2.iter().all(|y| y < x)),
        Candidate::EveryHasAbove => u2.iter().all(|x| u1.iter().any(|y| x < y)),
        Candidate::NotSubset => u1.iter().any(|x| !u2.contains(x)),
        Candidate::Superset => u2.iter().all(|x| u1.contains(x)),
        Candidate::SomePairOrdered => u1.iter().any(|x| u2.iter().any(|y| x < y)),
        Candidate::NegSomeAboveAll => !eval_candidate(Candidate::SomeAboveAll, u1, u2),
    }
}

/// Tests whether a candidate is a `(c₁, c₂)`-separating sentence on a suite
/// of instances: it must be true whenever `card(U₁) > c₁·card(U₂)` and
/// false whenever `card(U₂) > c₂·card(U₁)`. Returns the first
/// counterexample `(u1_size, u2_size, layout_tag)` if it fails.
pub fn violates_separation(
    c: Candidate,
    c1: f64,
    c2: f64,
    max_n: usize,
) -> Option<(usize, usize, &'static str)> {
    // Deterministic instance layouts: interleaved, U1-low/U2-high,
    // U1-high/U2-low.
    type Layout = fn(usize, usize) -> (Vec<Rat>, Vec<Rat>);
    let layouts: [(&str, Layout); 3] = [
        ("interleaved", |a, b| {
            let u1 = (0..a).map(|i| Rat::from(2 * i as i64)).collect();
            let u2 = (0..b).map(|i| Rat::from((2 * i + 1) as i64)).collect();
            (u1, u2)
        }),
        ("u1-low", |a, b| {
            let u1 = (0..a).map(|i| Rat::from(i as i64)).collect();
            let u2 = (0..b).map(|i| Rat::from((1000 + i) as i64)).collect();
            (u1, u2)
        }),
        ("u1-high", |a, b| {
            let u1 = (0..a).map(|i| Rat::from((1000 + i) as i64)).collect();
            let u2 = (0..b).map(|i| Rat::from(i as i64)).collect();
            (u1, u2)
        }),
    ];
    for a in 1..=max_n {
        for b in 1..=max_n {
            for (tag, make) in &layouts {
                let (u1, u2) = make(a, b);
                let val = eval_candidate(c, &u1, &u2);
                if (a as f64) > c1 * (b as f64) && !val {
                    return Some((a, b, tag));
                }
                if (b as f64) > c2 * (a as f64) && val {
                    return Some((a, b, tag));
                }
            }
        }
    }
    None
}

/// Sweeps the whole candidate family; returns the candidates that *do*
/// separate on the tested range (Proposition 1 predicts none for any
/// order-invariant family once instances may be laid out adversarially).
pub fn find_separating_sentence(c1: f64, c2: f64, max_n: usize) -> Vec<Candidate> {
    CANDIDATES
        .iter()
        .copied()
        .filter(|&c| violates_separation(c, c1, c2, max_n).is_none())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;

    #[test]
    fn good_instance_validation() {
        assert!(GoodInstance::new(3, vec![true, false, true]).is_some());
        assert!(GoodInstance::new(3, vec![false, false, false]).is_none()); // B empty
        assert!(GoodInstance::new(3, vec![true, true, true]).is_none()); // B = A
        assert!(GoodInstance::new(3, vec![true]).is_none()); // wrong length
    }

    #[test]
    fn reduction_volumes_partition_unit() {
        // X and Y tile [0,1]: VOL(X) + VOL(Y) = 1 (overlaps are null).
        for (n, mask) in [
            (2, vec![true, false]),
            (4, vec![true, false, true, false]),
            (5, vec![false, true, true, false, true]),
            (6, vec![true, true, false, false, true, false]),
        ] {
            let inst = GoodInstance::new(n, mask).unwrap();
            let (vx, vy) = good_instance_volumes(&inst);
            assert_eq!(&vx + &vy, Rat::one(), "n = {n}");
            assert!(vx.is_positive() && vy.is_positive());
        }
    }

    #[test]
    fn reduction_tracks_cardinality_ratio() {
        // With B = {0..k-1} as a prefix: X = [0, k/n], VOL(X) = k/n.
        let n = 8;
        for k in 1..n {
            let mask: Vec<bool> = (0..n).map(|i| i < k).collect();
            let inst = GoodInstance::new(n, mask).unwrap();
            let (vx, _) = good_instance_volumes(&inst);
            assert_eq!(vx, rat(k as i64, n as i64));
        }
    }

    #[test]
    fn no_candidate_separates() {
        // c1 = c2 = 2: every candidate in the family fails on some instance.
        let winners = find_separating_sentence(2.0, 2.0, 12);
        assert!(winners.is_empty(), "unexpected separators: {winners:?}");
        // And each failure has a concrete counterexample.
        for c in CANDIDATES {
            assert!(violates_separation(c, 2.0, 2.0, 12).is_some(), "{c:?}");
        }
    }

    #[test]
    fn candidate_semantics() {
        let u1 = [rat(5, 1), rat(6, 1)];
        let u2 = [rat(1, 1), rat(2, 1)];
        assert!(eval_candidate(Candidate::SomeAboveAll, &u1, &u2));
        assert!(!eval_candidate(Candidate::SomeAboveAll, &u2, &u1));
        assert!(eval_candidate(Candidate::NotSubset, &u1, &u2));
        assert!(!eval_candidate(Candidate::Superset, &u1, &u2));
    }
}
