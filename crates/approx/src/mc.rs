//! Theorem 4: uniform Monte Carlo approximation of `VOL_I(φ(ā, D))`.
//!
//! One sample, all parameters: because the definable family
//! `{φ(ā, D) : ā}` has VC dimension `≤ C·log|D|` (Proposition 6), a single
//! `M(ε, δ, d)`-point sample gives an `ε`-accurate empirical volume for
//! *every* parameter vector simultaneously, with probability ≥ 1 − δ.
//! That is what distinguishes Theorem 4 from naive per-query sampling —
//! and what [`UniformVolumeEstimator`] implements.

use crate::error::ApproxError;
use crate::par::{self, default_threads};
use crate::sample::{try_sample_size, Witness};
use cqa_arith::Rat;
use cqa_core::Database;
use cqa_logic::budget::{BudgetExceeded, EvalBudget};
use cqa_logic::{rat_to_f64_err, Batch, BatchScratch, CompiledMatrix, Formula, LaneStats, SlotMap};
use cqa_poly::Var;
use cqa_qe::QeError;

/// Expands relations and eliminates quantifiers (under the budget), then
/// lowers the matrix through the compiled kernel. A matrix the kernel
/// cannot lower (residual relation or quantifier) surfaces as an error
/// *here*, instead of being silently counted as a miss at every sample
/// point.
fn compile_matrix(
    db: &Database,
    phi: &Formula,
    slots: &SlotMap,
    budget: &EvalBudget,
) -> Result<(Formula, CompiledMatrix), ApproxError> {
    let expanded = db.expand(phi).map_err(|_| QeError::HasRelations)?;
    let matrix = cqa_qe::eliminate_with_budget(&expanded, budget)?;
    let kernel =
        CompiledMatrix::compile(&matrix, slots).map_err(|e| QeError::Residual(e.to_string()))?;
    Ok((matrix, kernel))
}

/// A volume estimator sharing one sample across all parameter vectors.
pub struct UniformVolumeEstimator {
    /// Quantifier-free matrix of the query (relations expanded, quantifiers
    /// eliminated), over `params ∪ point_vars` — kept as the reference
    /// oracle for the compiled kernel.
    matrix: Formula,
    kernel: CompiledMatrix,
    n_params: usize,
    sample: Vec<Vec<Rat>>,
    /// Exact `f64` mirror of the (dyadic) sample coordinates.
    sample_f64: Vec<Vec<f64>>,
}

impl UniformVolumeEstimator {
    /// Builds the estimator for `φ(params; point_vars)` against `db`,
    /// drawing `M(ε, δ, d)` unit-cube points through the witness operator.
    ///
    /// `d` is the VC dimension (or an upper bound, e.g.
    /// [`crate::vc::prop6_bound`]) of the family.
    // The signature mirrors Theorem 4's data (φ, parameters, point space,
    // ε, δ, d, witness source); bundling them would only rename the problem.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        db: &Database,
        phi: &Formula,
        params: &[Var],
        point_vars: &[Var],
        eps: f64,
        delta: f64,
        d: f64,
        witness: &mut Witness,
    ) -> Result<UniformVolumeEstimator, ApproxError> {
        Self::new_with_budget(
            db,
            phi,
            params,
            point_vars,
            eps,
            delta,
            d,
            witness,
            &EvalBudget::unlimited(),
        )
    }

    /// [`UniformVolumeEstimator::new`] under a cooperative [`EvalBudget`]:
    /// the QE/compile phase aborts with [`ApproxError::Budget`] when the
    /// budget is exhausted.
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_budget(
        db: &Database,
        phi: &Formula,
        params: &[Var],
        point_vars: &[Var],
        eps: f64,
        delta: f64,
        d: f64,
        witness: &mut Witness,
        budget: &EvalBudget,
    ) -> Result<UniformVolumeEstimator, ApproxError> {
        let slots = SlotMap::new(&[params, point_vars]);
        let (matrix, kernel) = compile_matrix(db, phi, &slots, budget)?;
        let m = try_sample_size(eps, delta, d)?;
        let sample = witness.uniform_sample(m, point_vars.len());
        let sample_f64 = sample
            .iter()
            .map(|p| p.iter().map(Rat::to_f64).collect())
            .collect();
        Ok(UniformVolumeEstimator {
            matrix,
            kernel,
            n_params: params.len(),
            sample,
            sample_f64,
        })
    }

    /// Number of sample points (`M`).
    pub fn sample_len(&self) -> usize {
        self.sample.len()
    }

    /// The quantifier-free matrix over `params ∪ point_vars` (the
    /// reference oracle the compiled kernel is checked against).
    pub fn matrix(&self) -> &Formula {
        &self.matrix
    }

    /// The shared sample (exact dyadic unit-cube points).
    pub fn sample(&self) -> &[Vec<Rat>] {
        &self.sample
    }

    /// The estimated `VOL_I(φ(ā, D))`: the fraction of the shared sample
    /// falling in the set.
    pub fn estimate(&self, a: &[Rat]) -> Result<Rat, ApproxError> {
        self.estimate_with_threads(a, default_threads())
    }

    /// [`Self::estimate`] with an explicit worker count. The result is
    /// identical for every `threads` value (the sample is fixed and chunk
    /// tallies combine in chunk order).
    pub fn estimate_with_threads(&self, a: &[Rat], threads: usize) -> Result<Rat, ApproxError> {
        self.estimate_budgeted(a, threads, &EvalBudget::unlimited())
    }

    /// [`Self::estimate_with_threads`] under a cooperative [`EvalBudget`]:
    /// the budget is checked once per sample point (shared atomically
    /// across worker threads) and the scan aborts with
    /// [`ApproxError::Budget`] when it is exhausted.
    pub fn estimate_budgeted(
        &self,
        a: &[Rat],
        threads: usize,
        budget: &EvalBudget,
    ) -> Result<Rat, ApproxError> {
        if a.len() != self.n_params {
            return Err(ApproxError::ParamArity {
                expected: self.n_params,
                got: a.len(),
            });
        }
        let np = self.n_params;
        let n_slots = self.kernel.slot_count();
        let dim = n_slots - np;
        let mut param_f64 = vec![0.0f64; np];
        let mut param_err = vec![0.0f64; np];
        for (i, r) in a.iter().enumerate() {
            (param_f64[i], param_err[i]) = rat_to_f64_err(r);
        }
        let per_chunk = par::map_chunks_scratch(
            self.sample.len(),
            threads,
            || (Batch::new(n_slots), BatchScratch::new()),
            |range, _, state| -> Result<usize, BudgetExceeded> {
                let (batch, scratch) = state;
                for _ in range.clone() {
                    budget.check()?;
                }
                batch.set_len(range.len());
                // Parameters broadcast into the leading slots (with their
                // conversion error bounds), then the shared sample
                // transposes into the point columns.
                for (s, (&v, &e)) in param_f64.iter().zip(&param_err).enumerate() {
                    batch.set_uniform(s, v, e);
                }
                for d in 0..dim {
                    let col = batch.col_mut(np + d);
                    for (lane, i) in range.clone().enumerate() {
                        col[lane] = self.sample_f64[i][d];
                    }
                }
                let base = range.start;
                let batch = &*batch;
                let exact = |lane: usize, slot: usize| {
                    if slot < np {
                        a[slot].clone()
                    } else {
                        self.sample[base + lane][slot - np].clone()
                    }
                };
                Ok(self.kernel.eval_batch(batch, &exact, scratch).mask.count())
            },
        )?;
        let mut hits = 0usize;
        for h in per_chunk {
            hits += h?;
        }
        Ok(Rat::new(
            (hits as i64).into(),
            (self.sample.len() as i64).into(),
        ))
    }
}

/// One-shot Monte Carlo `VOL_I` for a closed (parameter-free) formula with
/// `m` fresh sample points.
pub fn mc_volume_in_unit_box(
    db: &Database,
    phi: &Formula,
    point_vars: &[Var],
    m: usize,
    witness: &mut Witness,
) -> Result<Rat, ApproxError> {
    mc_volume_in_unit_box_threads(db, phi, point_vars, m, witness, default_threads())
}

/// [`mc_volume_in_unit_box`] with an explicit worker count.
///
/// Points are drawn through per-chunk witnesses split off the caller's
/// witness ([`Witness::fork`]), so the estimate is a pure function of the
/// witness seed, `m`, and the query — identical for every `threads` value.
pub fn mc_volume_in_unit_box_threads(
    db: &Database,
    phi: &Formula,
    point_vars: &[Var],
    m: usize,
    witness: &mut Witness,
    threads: usize,
) -> Result<Rat, ApproxError> {
    mc_volume_in_unit_box_budgeted(
        db,
        phi,
        point_vars,
        m,
        witness,
        threads,
        &EvalBudget::unlimited(),
    )
}

/// [`mc_volume_in_unit_box_threads`] under a cooperative [`EvalBudget`]:
/// the budget governs the QE/compile phase and is checked once per sample
/// point (shared atomically across worker threads).
pub fn mc_volume_in_unit_box_budgeted(
    db: &Database,
    phi: &Formula,
    point_vars: &[Var],
    m: usize,
    witness: &mut Witness,
    threads: usize,
    budget: &EvalBudget,
) -> Result<Rat, ApproxError> {
    Ok(mc_volume_in_unit_box_stats(db, phi, point_vars, m, witness, threads, budget)?.0)
}

/// [`mc_volume_in_unit_box_budgeted`], additionally returning the batched
/// kernel's [`LaneStats`] — how many sample lanes the certified `f64`
/// sweep decided vs how many took the exact fallback — so callers can
/// surface the fallback rate instead of absorbing it as a silent slowdown.
///
/// This is the one Monte Carlo volume hot path: each scheduling chunk
/// fills one structure-of-arrays [`Batch`] straight from its witness
/// substream and sweeps it through [`CompiledMatrix::eval_batch`] with
/// per-worker reusable scratch. The draw order inside a chunk matches the
/// per-point loop this replaces, so estimates are bit-identical to the
/// scalar kernel's for every `threads` value.
#[allow(clippy::too_many_arguments)]
pub fn mc_volume_in_unit_box_stats(
    db: &Database,
    phi: &Formula,
    point_vars: &[Var],
    m: usize,
    witness: &mut Witness,
    threads: usize,
    budget: &EvalBudget,
) -> Result<(Rat, LaneStats), ApproxError> {
    let slots = SlotMap::from_vars(point_vars);
    let (_, kernel) = compile_matrix(db, phi, &slots, budget)?;
    let splitter = witness.fork();
    witness.note_applications(m);
    let dim = point_vars.len();
    let kernel = &kernel;
    let per_chunk = par::map_chunks_scratch(
        m,
        threads,
        || (Batch::new(dim), BatchScratch::new()),
        |range, chunk, state| -> Result<(usize, LaneStats), BudgetExceeded> {
            let (batch, scratch) = state;
            for _ in range.clone() {
                budget.check()?;
            }
            let mut w = splitter.chunk(chunk as u64);
            batch.set_len(range.len());
            w.fill_unit_columns(batch, 0, dim);
            let batch = &*batch;
            let exact =
                |lane: usize, slot: usize| Rat::from_f64(batch.value(slot, lane)).expect("finite");
            let r = kernel.eval_batch(batch, &exact, scratch);
            let mut stats = LaneStats::default();
            stats.add(&r);
            Ok((r.mask.count(), stats))
        },
    )?;
    let mut hits = 0usize;
    let mut stats = LaneStats::default();
    for h in per_chunk {
        let (h, s) = h?;
        hits += h;
        stats.merge(s);
    }
    Ok((Rat::new((hits as i64).into(), (m as i64).into()), stats))
}

/// Monte Carlo estimate of the *average of a polynomial over a spatial
/// object* (the §1 motivation behind Theorem 1's AVG analysis): draws `m`
/// unit-cube points, and returns `Σ p(s) / #hits` over the sample points
/// `s` falling in the set. `None` if no sample point hits the set.
pub fn mc_average_over(
    db: &Database,
    phi: &Formula,
    point_vars: &[Var],
    p: &cqa_poly::MPoly,
    m: usize,
    witness: &mut Witness,
) -> Result<Option<Rat>, ApproxError> {
    mc_average_over_threads(db, phi, point_vars, p, m, witness, default_threads())
}

/// [`mc_average_over`] with an explicit worker count. Chunk sums are exact
/// rationals combined in chunk order, so the result is identical for every
/// `threads` value.
pub fn mc_average_over_threads(
    db: &Database,
    phi: &Formula,
    point_vars: &[Var],
    p: &cqa_poly::MPoly,
    m: usize,
    witness: &mut Witness,
    threads: usize,
) -> Result<Option<Rat>, ApproxError> {
    mc_average_over_budgeted(
        db,
        phi,
        point_vars,
        p,
        m,
        witness,
        threads,
        &EvalBudget::unlimited(),
    )
}

/// [`mc_average_over_threads`] under a cooperative [`EvalBudget`]: the
/// budget governs the QE/compile phase and is checked once per sample
/// point (shared atomically across worker threads).
#[allow(clippy::too_many_arguments)]
pub fn mc_average_over_budgeted(
    db: &Database,
    phi: &Formula,
    point_vars: &[Var],
    p: &cqa_poly::MPoly,
    m: usize,
    witness: &mut Witness,
    threads: usize,
    budget: &EvalBudget,
) -> Result<Option<Rat>, ApproxError> {
    let slots = SlotMap::from_vars(point_vars);
    let (_, kernel) = compile_matrix(db, phi, &slots, budget)?;
    let splitter = witness.fork();
    witness.note_applications(m);
    let dim = point_vars.len();
    let kernel = &kernel;
    let slots = &slots;
    let per_chunk = par::map_chunks_scratch(
        m,
        threads,
        // Per-worker scratch: the batch, the kernel scratch, and one
        // reusable rational point buffer for the hit lanes — no per-point
        // heap allocation on the hot path.
        || (Batch::new(dim), BatchScratch::new(), vec![Rat::zero(); dim]),
        |range, chunk, state| -> Result<(usize, Rat), BudgetExceeded> {
            let (batch, scratch, pt) = state;
            for _ in range.clone() {
                budget.check()?;
            }
            let mut w = splitter.chunk(chunk as u64);
            batch.set_len(range.len());
            w.fill_unit_columns(batch, 0, dim);
            let batch = &*batch;
            let exact =
                |lane: usize, slot: usize| Rat::from_f64(batch.value(slot, lane)).expect("finite");
            let r = kernel.eval_batch(batch, &exact, scratch);
            let mut hits = 0usize;
            let mut acc = Rat::zero();
            for lane in 0..batch.len() {
                if r.mask.get(lane) {
                    hits += 1;
                    for (d, c) in pt.iter_mut().enumerate() {
                        *c = Rat::from_f64(batch.value(d, lane)).expect("finite");
                    }
                    acc += &p.eval(&slots.assignment(pt));
                }
            }
            Ok((hits, acc))
        },
    )?;
    let mut hits = 0usize;
    let mut acc = Rat::zero();
    for r in per_chunk {
        let (h, a) = r?;
        hits += h;
        acc += &a;
    }
    if hits == 0 {
        return Ok(None);
    }
    Ok(Some(acc / Rat::from(hits as i64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_logic::parse_formula_with;

    #[test]
    fn halfspace_volume_estimate() {
        let mut db = Database::new();
        let x = db.vars_mut().intern("x");
        let y = db.vars_mut().intern("y");
        let phi = parse_formula_with("x + y <= 1", db.vars_mut()).unwrap();
        let mut w = Witness::new(11);
        let v = mc_volume_in_unit_box(&db, &phi, &[x, y], 4000, &mut w).unwrap();
        assert!((v.to_f64() - 0.5).abs() < 0.05);
    }

    #[test]
    fn uniform_estimator_over_parameter_grid() {
        // φ(a; y1, y2) ≡ a < y1 < 1 ∧ 0 ≤ y2 ≤ y1: VOL_I = (1 − a²)/2.
        let mut db = Database::new();
        let a = db.vars_mut().intern("a");
        let y1 = db.vars_mut().intern("y1");
        let y2 = db.vars_mut().intern("y2");
        let phi =
            parse_formula_with("a < y1 & y1 < 1 & 0 <= y2 & y2 <= y1", db.vars_mut()).unwrap();
        let mut w = Witness::new(23);
        let est = UniformVolumeEstimator::new(&db, &phi, &[a], &[y1, y2], 0.05, 0.1, 2.0, &mut w)
            .unwrap();
        // Uniform accuracy over many parameter values from one sample.
        for k in 0..10 {
            let av = Rat::new(k.into(), 10i64.into());
            let truth = (1.0 - av.to_f64().powi(2)) / 2.0;
            let got = est.estimate(&[av]).unwrap().to_f64();
            assert!((got - truth).abs() < 0.05, "a = {k}/10: {got} vs {truth}");
        }
    }

    #[test]
    fn estimator_uses_bounded_sample() {
        let mut db = Database::new();
        let x = db.vars_mut().intern("x");
        let phi = parse_formula_with("x >= 0.25", db.vars_mut()).unwrap();
        let mut w = Witness::new(5);
        let est = UniformVolumeEstimator::new(&db, &phi, &[], &[x], 0.1, 0.1, 1.0, &mut w).unwrap();
        assert_eq!(est.sample_len(), crate::sample::sample_size(0.1, 0.1, 1.0));
        let v = est.estimate(&[]).unwrap();
        assert!((v.to_f64() - 0.75).abs() < 0.1);
    }

    #[test]
    fn mc_average_matches_exact_integral() {
        // Average of x over the unit right triangle is 1/3 (exact engine:
        // cqa_agg::average_over_2d); MC should land nearby.
        let mut db = Database::new();
        let x = db.vars_mut().intern("x");
        let y = db.vars_mut().intern("y");
        let phi = parse_formula_with("x >= 0 & y >= 0 & x + y <= 1", db.vars_mut()).unwrap();
        let mut w = Witness::new(31);
        let avg = mc_average_over(&db, &phi, &[x, y], &cqa_poly::MPoly::var(x), 6000, &mut w)
            .unwrap()
            .unwrap();
        assert!((avg.to_f64() - 1.0 / 3.0).abs() < 0.02, "{}", avg.to_f64());
    }

    #[test]
    fn mc_average_of_empty_region() {
        let mut db = Database::new();
        let x = db.vars_mut().intern("x");
        let phi = parse_formula_with("x > 2", db.vars_mut()).unwrap();
        let mut w = Witness::new(1);
        assert_eq!(
            mc_average_over(&db, &phi, &[x], &cqa_poly::MPoly::var(x), 100, &mut w).unwrap(),
            None
        );
    }

    #[test]
    fn database_relation_in_estimate() {
        let mut db = Database::new();
        db.define("T", &["x", "y"], "x >= 0 & y >= 0 & x + y <= 1")
            .unwrap();
        let x = db.vars_mut().get("x").unwrap();
        let y = db.vars_mut().get("y").unwrap();
        let phi = parse_formula_with("T(x, y)", db.vars_mut()).unwrap();
        let mut w = Witness::new(99);
        let v = mc_volume_in_unit_box(&db, &phi, &[x, y], 4000, &mut w).unwrap();
        assert!((v.to_f64() - 0.5).abs() < 0.05);
    }
}
