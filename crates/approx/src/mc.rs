//! Theorem 4: uniform Monte Carlo approximation of `VOL_I(φ(ā, D))`.
//!
//! One sample, all parameters: because the definable family
//! `{φ(ā, D) : ā}` has VC dimension `≤ C·log|D|` (Proposition 6), a single
//! `M(ε, δ, d)`-point sample gives an `ε`-accurate empirical volume for
//! *every* parameter vector simultaneously, with probability ≥ 1 − δ.
//! That is what distinguishes Theorem 4 from naive per-query sampling —
//! and what [`UniformVolumeEstimator`] implements.

use crate::sample::{sample_size, Witness};
use cqa_arith::Rat;
use cqa_core::Database;
use cqa_logic::Formula;
use cqa_poly::Var;
use cqa_qe::QeError;

/// A volume estimator sharing one sample across all parameter vectors.
pub struct UniformVolumeEstimator {
    /// Quantifier-free matrix of the query (relations expanded, quantifiers
    /// eliminated), over `params ∪ point_vars`.
    matrix: Formula,
    params: Vec<Var>,
    point_vars: Vec<Var>,
    sample: Vec<Vec<Rat>>,
}

impl UniformVolumeEstimator {
    /// Builds the estimator for `φ(params; point_vars)` against `db`,
    /// drawing `M(ε, δ, d)` unit-cube points through the witness operator.
    ///
    /// `d` is the VC dimension (or an upper bound, e.g.
    /// [`crate::vc::prop6_bound`]) of the family.
    pub fn new(
        db: &Database,
        phi: &Formula,
        params: &[Var],
        point_vars: &[Var],
        eps: f64,
        delta: f64,
        d: f64,
        witness: &mut Witness,
    ) -> Result<UniformVolumeEstimator, QeError> {
        let expanded = db.expand(phi).map_err(|_| QeError::HasRelations)?;
        let matrix = cqa_qe::eliminate(&expanded)?;
        let m = sample_size(eps, delta, d);
        let sample = witness.uniform_sample(m, point_vars.len());
        Ok(UniformVolumeEstimator {
            matrix,
            params: params.to_vec(),
            point_vars: point_vars.to_vec(),
            sample,
        })
    }

    /// Number of sample points (`M`).
    pub fn sample_len(&self) -> usize {
        self.sample.len()
    }

    /// The estimated `VOL_I(φ(ā, D))`: the fraction of the shared sample
    /// falling in the set.
    pub fn estimate(&self, a: &[Rat]) -> Rat {
        assert_eq!(a.len(), self.params.len());
        let mut hits = 0usize;
        for p in &self.sample {
            let asg = |v: Var| {
                if let Some(i) = self.params.iter().position(|&w| w == v) {
                    return a[i].clone();
                }
                if let Some(i) = self.point_vars.iter().position(|&w| w == v) {
                    return p[i].clone();
                }
                Rat::zero()
            };
            if self.matrix.eval(&asg, &[]).unwrap_or(false) {
                hits += 1;
            }
        }
        Rat::new((hits as i64).into(), (self.sample.len() as i64).into())
    }
}

/// One-shot Monte Carlo `VOL_I` for a closed (parameter-free) formula with
/// `m` fresh sample points.
pub fn mc_volume_in_unit_box(
    db: &Database,
    phi: &Formula,
    point_vars: &[Var],
    m: usize,
    witness: &mut Witness,
) -> Result<Rat, QeError> {
    let expanded = db.expand(phi).map_err(|_| QeError::HasRelations)?;
    let matrix = cqa_qe::eliminate(&expanded)?;
    let mut hits = 0usize;
    for _ in 0..m {
        let p = witness.uniform_unit_point(point_vars.len());
        let asg = |v: Var| {
            point_vars
                .iter()
                .position(|&w| w == v)
                .map(|i| p[i].clone())
                .unwrap_or_else(Rat::zero)
        };
        if matrix.eval(&asg, &[]).unwrap_or(false) {
            hits += 1;
        }
    }
    Ok(Rat::new((hits as i64).into(), (m as i64).into()))
}

/// Monte Carlo estimate of the *average of a polynomial over a spatial
/// object* (the §1 motivation behind Theorem 1's AVG analysis): draws `m`
/// unit-cube points, and returns `Σ p(s) / #hits` over the sample points
/// `s` falling in the set. `None` if no sample point hits the set.
pub fn mc_average_over(
    db: &Database,
    phi: &Formula,
    point_vars: &[Var],
    p: &cqa_poly::MPoly,
    m: usize,
    witness: &mut Witness,
) -> Result<Option<Rat>, QeError> {
    let expanded = db.expand(phi).map_err(|_| QeError::HasRelations)?;
    let matrix = cqa_qe::eliminate(&expanded)?;
    let mut hits = 0usize;
    let mut acc = Rat::zero();
    for _ in 0..m {
        let s = witness.uniform_unit_point(point_vars.len());
        let asg = |v: Var| {
            point_vars
                .iter()
                .position(|&w| w == v)
                .map(|i| s[i].clone())
                .unwrap_or_else(Rat::zero)
        };
        if matrix.eval(&asg, &[]).unwrap_or(false) {
            hits += 1;
            acc += &p.eval(&asg);
        }
    }
    if hits == 0 {
        return Ok(None);
    }
    Ok(Some(acc / Rat::from(hits as i64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_logic::parse_formula_with;

    #[test]
    fn halfspace_volume_estimate() {
        let mut db = Database::new();
        let x = db.vars_mut().intern("x");
        let y = db.vars_mut().intern("y");
        let phi = parse_formula_with("x + y <= 1", db.vars_mut()).unwrap();
        let mut w = Witness::new(11);
        let v = mc_volume_in_unit_box(&db, &phi, &[x, y], 4000, &mut w).unwrap();
        assert!((v.to_f64() - 0.5).abs() < 0.05);
    }

    #[test]
    fn uniform_estimator_over_parameter_grid() {
        // φ(a; y1, y2) ≡ a < y1 < 1 ∧ 0 ≤ y2 ≤ y1: VOL_I = (1 − a²)/2.
        let mut db = Database::new();
        let a = db.vars_mut().intern("a");
        let y1 = db.vars_mut().intern("y1");
        let y2 = db.vars_mut().intern("y2");
        let phi =
            parse_formula_with("a < y1 & y1 < 1 & 0 <= y2 & y2 <= y1", db.vars_mut()).unwrap();
        let mut w = Witness::new(23);
        let est =
            UniformVolumeEstimator::new(&db, &phi, &[a], &[y1, y2], 0.05, 0.1, 2.0, &mut w)
                .unwrap();
        // Uniform accuracy over many parameter values from one sample.
        for k in 0..10 {
            let av = Rat::new(k.into(), 10i64.into());
            let truth = (1.0 - av.to_f64().powi(2)) / 2.0;
            let got = est.estimate(&[av]).to_f64();
            assert!((got - truth).abs() < 0.05, "a = {k}/10: {got} vs {truth}");
        }
    }

    #[test]
    fn estimator_uses_bounded_sample() {
        let mut db = Database::new();
        let x = db.vars_mut().intern("x");
        let phi = parse_formula_with("x >= 0.25", db.vars_mut()).unwrap();
        let mut w = Witness::new(5);
        let est = UniformVolumeEstimator::new(&db, &phi, &[], &[x], 0.1, 0.1, 1.0, &mut w).unwrap();
        assert_eq!(est.sample_len(), crate::sample::sample_size(0.1, 0.1, 1.0));
        let v = est.estimate(&[]);
        assert!((v.to_f64() - 0.75).abs() < 0.1);
    }

    #[test]
    fn mc_average_matches_exact_integral() {
        // Average of x over the unit right triangle is 1/3 (exact engine:
        // cqa_agg::average_over_2d); MC should land nearby.
        let mut db = Database::new();
        let x = db.vars_mut().intern("x");
        let y = db.vars_mut().intern("y");
        let phi = parse_formula_with("x >= 0 & y >= 0 & x + y <= 1", db.vars_mut()).unwrap();
        let mut w = Witness::new(31);
        let avg = mc_average_over(&db, &phi, &[x, y], &cqa_poly::MPoly::var(x), 6000, &mut w)
            .unwrap()
            .unwrap();
        assert!((avg.to_f64() - 1.0 / 3.0).abs() < 0.02, "{}", avg.to_f64());
    }

    #[test]
    fn mc_average_of_empty_region() {
        let mut db = Database::new();
        let x = db.vars_mut().intern("x");
        let phi = parse_formula_with("x > 2", db.vars_mut()).unwrap();
        let mut w = Witness::new(1);
        assert_eq!(
            mc_average_over(&db, &phi, &[x], &cqa_poly::MPoly::var(x), 100, &mut w).unwrap(),
            None
        );
    }

    #[test]
    fn database_relation_in_estimate() {
        let mut db = Database::new();
        db.define("T", &["x", "y"], "x >= 0 & y >= 0 & x + y <= 1").unwrap();
        let x = db.vars_mut().get("x").unwrap();
        let y = db.vars_mut().get("y").unwrap();
        let phi = parse_formula_with("T(x, y)", db.vars_mut()).unwrap();
        let mut w = Witness::new(99);
        let v = mc_volume_in_unit_box(&db, &phi, &[x, y], 4000, &mut w).unwrap();
        assert!((v.to_f64() - 0.5).abs() < 0.05);
    }
}
