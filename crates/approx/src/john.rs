//! Löwner–John relative volume approximation for convex bodies
//! (the Section-4.3 remark).
//!
//! For a convex `k`-dimensional body `P`, John's theorem gives an
//! ellipsoid `E` with `E ⊆ P ⊆ k·E` (general position). From the minimum
//! volume enclosing ellipsoid (MVEE, computed by Khachiyan's barycentric
//! coordinate ascent over the vertices) we obtain
//! `vol(MVEE)/kᵏ ≤ vol(P) ≤ vol(MVEE)`, hence a relative `(c₁, c₂)`
//! approximation with `c₂/c₁ = kᵏ` — matching the paper's constants
//! `c₁ = (kᵏ+1)/(2kᵏ) − ε`, `c₂ = (kᵏ+1)/2 + ε` for the midpoint
//! estimator. Numerically `f64`; this is an approximation module by
//! definition.

/// The result of a Löwner–John analysis.
#[derive(Clone, Debug)]
pub struct JohnBounds {
    /// Volume of the enclosing ellipsoid.
    pub outer_volume: f64,
    /// `outer_volume / k^k` — the guaranteed inner bound.
    pub inner_volume: f64,
    /// The midpoint estimator `(inner + outer)/2`.
    pub estimate: f64,
}

/// Khachiyan's MVEE: returns `(A, c)` with ellipsoid
/// `{x : (x−c)ᵀ A (x−c) ≤ 1}` enclosing the points, within tolerance.
/// Errors unless there are strictly more points than dimensions (the
/// ellipsoid is degenerate otherwise).
pub fn mvee(
    points: &[Vec<f64>],
    tol: f64,
) -> Result<(Vec<Vec<f64>>, Vec<f64>), crate::ApproxError> {
    let m = points.len();
    let d = points.first().map_or(0, Vec::len);
    if m <= d || d == 0 {
        return Err(crate::ApproxError::InvalidParameter(format!(
            "MVEE needs more points than dimensions (got {m} points in dimension {d})"
        )));
    }
    // Lift to homogeneous coordinates.
    let q: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            let mut v = p.clone();
            v.push(1.0);
            v
        })
        .collect();
    let mut u = vec![1.0 / m as f64; m];
    let dim = d + 1;
    for _ in 0..1000 {
        // X = Σ uᵢ qᵢ qᵢᵀ
        let mut x = vec![vec![0.0; dim]; dim];
        for (i, qi) in q.iter().enumerate() {
            for r in 0..dim {
                for c in 0..dim {
                    x[r][c] += u[i] * qi[r] * qi[c];
                }
            }
        }
        let xinv = invert(&x);
        // M_i = qᵢᵀ X⁻¹ qᵢ
        let mut max_m = f64::MIN;
        let mut max_i = 0;
        for (i, qi) in q.iter().enumerate() {
            let mut mi = 0.0;
            for r in 0..dim {
                for c in 0..dim {
                    mi += qi[r] * xinv[r][c] * qi[c];
                }
            }
            if mi > max_m {
                max_m = mi;
                max_i = i;
            }
        }
        let step = (max_m - dim as f64) / (dim as f64 * (max_m - 1.0));
        if step <= tol {
            break;
        }
        for w in u.iter_mut() {
            *w *= 1.0 - step;
        }
        u[max_i] += step;
    }
    // Center c = Σ uᵢ pᵢ; shape A = (1/d)·(Σ uᵢ pᵢpᵢᵀ − ccᵀ)⁻¹.
    let mut center = vec![0.0; d];
    for (i, p) in points.iter().enumerate() {
        for j in 0..d {
            center[j] += u[i] * p[j];
        }
    }
    let mut s = vec![vec![0.0; d]; d];
    for (i, p) in points.iter().enumerate() {
        for r in 0..d {
            for c in 0..d {
                s[r][c] += u[i] * p[r] * p[c];
            }
        }
    }
    for r in 0..d {
        for c in 0..d {
            s[r][c] -= center[r] * center[c];
        }
    }
    let sinv = invert(&s);
    let a: Vec<Vec<f64>> = sinv
        .iter()
        .map(|row| row.iter().map(|v| v / d as f64).collect())
        .collect();
    Ok((a, center))
}

/// Volume of the `d`-dimensional unit ball.
pub fn unit_ball_volume(d: usize) -> f64 {
    // V_d = π^{d/2} / Γ(d/2 + 1), by the even/odd closed forms.
    let pi = std::f64::consts::PI;
    if d.is_multiple_of(2) {
        let k = d / 2;
        let mut v = 1.0;
        for i in 1..=k {
            v *= pi / i as f64;
        }
        v
    } else {
        let k = d / 2; // d = 2k + 1
        let mut v = 2.0;
        for i in 0..k {
            v *= 2.0 * pi / (2 * (i + 1) + 1) as f64;
        }
        v
    }
}

/// Volume of the ellipsoid `{x : (x−c)ᵀ A (x−c) ≤ 1}` = `V_d / √det(A)`.
pub fn ellipsoid_volume(a: &[Vec<f64>]) -> f64 {
    let d = a.len();
    unit_ball_volume(d) / determinant(a).sqrt()
}

/// Löwner–John volume bounds for the convex hull of `points` (full
/// dimensional).
pub fn john_volume_bounds(points: &[Vec<f64>]) -> Result<JohnBounds, crate::ApproxError> {
    let d = points.first().map_or(0, Vec::len);
    let (a, _c) = mvee(points, 1e-7)?;
    let outer = ellipsoid_volume(&a);
    let kk = (d as f64).powi(d as i32);
    let inner = outer / kk;
    Ok(JohnBounds {
        outer_volume: outer,
        inner_volume: inner,
        estimate: (inner + outer) / 2.0,
    })
}

fn invert(m: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = m.len();
    let mut a: Vec<Vec<f64>> = m.to_vec();
    let mut inv = vec![vec![0.0; n]; n];
    for (i, row) in inv.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for col in 0..n {
        // Partial pivot.
        let mut p = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[p][col].abs() {
                p = r;
            }
        }
        a.swap(col, p);
        inv.swap(col, p);
        let d = a[col][col];
        for c in 0..n {
            a[col][c] /= d;
            inv[col][c] /= d;
        }
        for r in 0..n {
            if r != col {
                let f = a[r][col];
                for c in 0..n {
                    a[r][c] -= f * a[col][c];
                    inv[r][c] -= f * inv[col][c];
                }
            }
        }
    }
    inv
}

fn determinant(m: &[Vec<f64>]) -> f64 {
    let n = m.len();
    let mut a: Vec<Vec<f64>> = m.to_vec();
    let mut det = 1.0;
    for col in 0..n {
        let mut p = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[p][col].abs() {
                p = r;
            }
        }
        if a[p][col] == 0.0 {
            return 0.0;
        }
        if p != col {
            a.swap(col, p);
            det = -det;
        }
        det *= a[col][col];
        for r in col + 1..n {
            let f = a[r][col] / a[col][col];
            let (top, bottom) = a.split_at_mut(r);
            for (rv, pv) in bottom[0][col..].iter_mut().zip(&top[col][col..]) {
                *rv -= f * pv;
            }
        }
    }
    det
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_ball_volumes() {
        assert!((unit_ball_volume(1) - 2.0).abs() < 1e-12);
        assert!((unit_ball_volume(2) - std::f64::consts::PI).abs() < 1e-12);
        assert!((unit_ball_volume(3) - 4.0 / 3.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn mvee_of_square_contains_it() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![0.5, 0.5],
        ];
        let (a, c) = mvee(&pts, 1e-8).unwrap();
        // Every point satisfies (p−c)ᵀA(p−c) ≤ 1 + tolerance.
        for p in &pts {
            let mut v = 0.0;
            for r in 0..2 {
                for s in 0..2 {
                    v += (p[r] - c[r]) * a[r][s] * (p[s] - c[s]);
                }
            }
            assert!(v <= 1.0 + 1e-2, "{v}");
        }
        // Center near (0.5, 0.5).
        assert!((c[0] - 0.5).abs() < 1e-3 && (c[1] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn john_bounds_bracket_true_volume() {
        // Unit square: volume 1; k = 2, so bounds within a 4× band.
        let pts = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
        ];
        let b = john_volume_bounds(&pts).unwrap();
        assert!(b.inner_volume <= 1.0 + 1e-6, "inner {}", b.inner_volume);
        assert!(b.outer_volume >= 1.0 - 1e-6, "outer {}", b.outer_volume);
        // Relative width is k^k = 4.
        assert!((b.outer_volume / b.inner_volume - 4.0).abs() < 1e-6);
    }

    #[test]
    fn john_bounds_triangle_3d() {
        // Unit tetrahedron: volume 1/6; k = 3, band k^k = 27.
        let pts = vec![
            vec![0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let b = john_volume_bounds(&pts).unwrap();
        let truth = 1.0 / 6.0;
        assert!(b.inner_volume <= truth * 1.01);
        assert!(b.outer_volume >= truth * 0.99);
    }
}
