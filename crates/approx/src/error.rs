//! Typed errors for the approximation layer.

use crate::par::ChunkPanicked;
use cqa_logic::budget::BudgetExceeded;
use cqa_qe::QeError;

/// Errors from approximate evaluation (Monte Carlo estimation, Löwner–John
/// bounds, sample-size computation).
#[derive(Debug, Clone, PartialEq)]
pub enum ApproxError {
    /// Quantifier elimination / kernel compilation failed while preparing
    /// the query matrix.
    Qe(QeError),
    /// The evaluation budget was exhausted mid-estimation (see
    /// [`cqa_logic::budget`]).
    Budget(BudgetExceeded),
    /// A parallel chunk worker panicked; the panic was contained (the
    /// process and sibling chunks survive) and surfaced here.
    WorkerPanicked {
        /// Index of the failed chunk (the lowest, if several failed).
        chunk: usize,
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A parameter vector's length disagrees with the estimator's
    /// parameter count.
    ParamArity {
        /// Parameters the estimator was built with.
        expected: usize,
        /// Parameters supplied.
        got: usize,
    },
    /// A numeric parameter was out of its valid range (e.g. ε ∉ (0, 1)).
    InvalidParameter(String),
}

impl std::fmt::Display for ApproxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApproxError::Qe(e) => write!(f, "quantifier elimination failed: {e}"),
            ApproxError::Budget(b) => write!(f, "{b}"),
            ApproxError::WorkerPanicked { chunk, message } => {
                write!(f, "worker panicked on chunk {chunk}: {message}")
            }
            ApproxError::ParamArity { expected, got } => {
                write!(f, "expected {expected} parameters, got {got}")
            }
            ApproxError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}
impl std::error::Error for ApproxError {}

impl From<QeError> for ApproxError {
    fn from(e: QeError) -> ApproxError {
        // Budget trips inside QE surface as the approx-level budget variant
        // so callers match on one place.
        match e {
            QeError::Budget(b) => ApproxError::Budget(b),
            other => ApproxError::Qe(other),
        }
    }
}

impl From<BudgetExceeded> for ApproxError {
    fn from(b: BudgetExceeded) -> ApproxError {
        ApproxError::Budget(b)
    }
}

impl From<ChunkPanicked> for ApproxError {
    fn from(p: ChunkPanicked) -> ApproxError {
        ApproxError::WorkerPanicked {
            chunk: p.chunk,
            message: p.message,
        }
    }
}
