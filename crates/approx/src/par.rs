//! A minimal deterministic fork–join runner over fixed-size chunks.
//!
//! Monte Carlo estimation (Theorem 4) is embarrassingly parallel, but the
//! seeded-reproducibility contract of [`crate::sample::Witness`] demands
//! that results not depend on scheduling. The invariants here guarantee
//! that:
//!
//! * the chunking of `0..n` is a pure function of `n` (fixed [`CHUNK`]
//!   size), never of the worker count;
//! * chunk results are returned **in chunk order**, whatever order workers
//!   finished them in;
//! * per-chunk randomness comes from [`crate::sample::WitnessSplitter`],
//!   keyed by chunk index — not from any shared mutable RNG.
//!
//! Consequently `run_chunks(n, 1, work)` and `run_chunks(n, 64, work)`
//! return identical vectors, and any fold over them is thread-count
//! invariant. Threading is `std::thread::scope` only — no external
//! runtime.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Items per chunk. Small enough to load-balance a few thousand Monte
/// Carlo points across workers, large enough to amortize dispatch.
pub const CHUNK: usize = 512;

/// The item range of chunk `c` within `0..n`.
fn chunk_range(c: usize, n: usize) -> std::ops::Range<usize> {
    let start = c * CHUNK;
    start..((start + CHUNK).min(n))
}

/// The default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `work(range, chunk_index)` for every [`CHUNK`]-sized slice of
/// `0..n` on up to `threads` workers, returning the results in chunk
/// order. The output is identical for every `threads` value.
pub fn run_chunks<T, F>(n: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>, usize) -> T + Sync,
{
    let n_chunks = n.div_ceil(CHUNK);
    let threads = threads.clamp(1, n_chunks.max(1));
    if threads == 1 || n_chunks <= 1 {
        return (0..n_chunks).map(|c| work(chunk_range(c, n), c)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        out.push((c, work(chunk_range(c, n), c)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("chunk worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|&(c, _)| c);
    tagged.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_items_once() {
        let n = 3 * CHUNK + 17;
        let per_chunk = run_chunks(n, 4, |r, _| r.len());
        assert_eq!(per_chunk.iter().sum::<usize>(), n);
        assert_eq!(per_chunk.len(), 4);
    }

    #[test]
    fn order_and_results_independent_of_thread_count() {
        let n = 5 * CHUNK + 3;
        let work = |r: std::ops::Range<usize>, c: usize| (c, r.start, r.end);
        let one = run_chunks(n, 1, work);
        for t in [2, 3, 8, 64] {
            assert_eq!(run_chunks(n, t, work), one, "threads = {t}");
        }
    }

    #[test]
    fn empty_input() {
        assert!(run_chunks(0, 4, |r, _| r.len()).is_empty());
    }
}
