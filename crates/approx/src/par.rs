//! A minimal deterministic fork–join runner over fixed-size chunks.
//!
//! Monte Carlo estimation (Theorem 4) is embarrassingly parallel, but the
//! seeded-reproducibility contract of [`crate::sample::Witness`] demands
//! that results not depend on scheduling. The invariants here guarantee
//! that:
//!
//! * the chunking of `0..n` is a pure function of `n` (fixed [`CHUNK`]
//!   size), never of the worker count;
//! * chunk results are returned **in chunk order**, whatever order workers
//!   finished them in;
//! * per-chunk randomness comes from [`crate::sample::WitnessSplitter`],
//!   keyed by chunk index — not from any shared mutable RNG.
//!
//! Consequently `run_chunks(n, 1, work)` and `run_chunks(n, 64, work)`
//! return identical vectors, and any fold over them is thread-count
//! invariant. Threading is `std::thread::scope` only — no external
//! runtime.
//!
//! [`map_chunks`] is the fallible entry point: each chunk runs under
//! `catch_unwind`, so a panicking work closure surfaces as a typed
//! [`ChunkPanicked`] error instead of aborting the process — one poisoned
//! chunk cannot kill a long-running service.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Items per chunk. Small enough to load-balance a few thousand Monte
/// Carlo points across workers, large enough to amortize dispatch — and
/// exactly one [`cqa_logic::BATCH_LANES`]-lane batch of the vectorized
/// kernel, so a scheduling chunk maps 1:1 onto a kernel batch.
pub const CHUNK: usize = cqa_logic::BATCH_LANES;

/// The item range of chunk `c` within `0..n`.
fn chunk_range(c: usize, n: usize) -> std::ops::Range<usize> {
    let start = c * CHUNK;
    start..((start + CHUNK).min(n))
}

/// The default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A chunk's work closure panicked. The panic was caught inside the worker
/// — the process, the other workers, and the other chunks all survive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPanicked {
    /// Index of the failed chunk. If several chunks failed, the lowest
    /// index is reported (deterministic for any thread count).
    pub chunk: usize,
    /// The panic payload, if it was a string; `"<non-string panic>"`
    /// otherwise.
    pub message: String,
}

impl std::fmt::Display for ChunkPanicked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chunk {} panicked: {}", self.chunk, self.message)
    }
}
impl std::error::Error for ChunkPanicked {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// Runs `work(range, chunk_index)` for every [`CHUNK`]-sized slice of
/// `0..n` on up to `threads` workers, returning the results in chunk
/// order. The output is identical for every `threads` value.
///
/// Every chunk runs under `catch_unwind`: a panicking closure yields
/// `Err(ChunkPanicked)` (lowest failed chunk) instead of tearing down the
/// process; the remaining chunks still run to completion.
pub fn map_chunks<T, F>(n: usize, threads: usize, work: F) -> Result<Vec<T>, ChunkPanicked>
where
    T: Send,
    F: Fn(std::ops::Range<usize>, usize) -> T + Sync,
{
    map_chunks_scratch(n, threads, || (), |r, c, ()| work(r, c))
}

/// [`map_chunks`] with per-worker scratch state: every worker builds one
/// `S` via `mk_scratch` and threads it mutably through all the chunks it
/// pulls, so reusable buffers (e.g. a [`cqa_logic::Batch`] +
/// [`cqa_logic::BatchScratch`] pair) are allocated once per worker instead
/// of once per chunk. Scratch is working memory, not an accumulator:
/// results must depend only on `(range, chunk_index)`, never on which
/// worker ran the chunk — that is what keeps the output identical for
/// every `threads` value.
///
/// Dispatch never oversubscribes: the worker count is capped at the chunk
/// count, the single-worker and single-chunk cases run inline on the
/// caller's thread with no scope at all, and when threads are spawned the
/// caller participates as one of the workers (`threads` workers =
/// `threads − 1` spawns).
pub fn map_chunks_scratch<T, S, M, F>(
    n: usize,
    threads: usize,
    mk_scratch: M,
    work: F,
) -> Result<Vec<T>, ChunkPanicked>
where
    T: Send,
    M: Fn() -> S + Sync,
    F: Fn(std::ops::Range<usize>, usize, &mut S) -> T + Sync,
{
    let n_chunks = n.div_ceil(CHUNK);
    let next = AtomicUsize::new(0);
    // One worker's loop: pull chunks off the shared counter until drained.
    // A caught panic poisons the scratch (the closure may have died midway
    // through mutating it), so it is rebuilt before the next chunk.
    let run_worker = || {
        let mut scratch = mk_scratch();
        let mut out: Vec<(usize, Result<T, ChunkPanicked>)> = Vec::new();
        loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= n_chunks {
                break;
            }
            let r = catch_unwind(AssertUnwindSafe(|| {
                work(chunk_range(c, n), c, &mut scratch)
            }));
            out.push((
                c,
                r.map_err(|payload| {
                    scratch = mk_scratch();
                    ChunkPanicked {
                        chunk: c,
                        message: panic_message(payload),
                    }
                }),
            ));
        }
        out
    };
    let workers = threads.clamp(1, n_chunks.max(1));
    let mut tagged: Vec<(usize, Result<T, ChunkPanicked>)> = if workers == 1 {
        run_worker()
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (1..workers).map(|_| s.spawn(run_worker)).collect();
            let mut all = run_worker();
            for h in handles {
                match h.join() {
                    Ok(v) => all.extend(v),
                    // catch_unwind already contains work panics; a join
                    // failure would mean the panic escaped (e.g. raised
                    // while dropping the payload). Surface it, don't abort.
                    Err(payload) => all.push((
                        usize::MAX,
                        Err(ChunkPanicked {
                            chunk: usize::MAX,
                            message: panic_message(payload),
                        }),
                    )),
                }
            }
            all
        })
    };
    tagged.sort_unstable_by_key(|&(c, _)| c);
    tagged.into_iter().map(|(_, t)| t).collect()
}

/// Infallible variant of [`map_chunks`] for work closures that cannot
/// panic; if one does anyway, the panic is re-raised on the calling thread
/// (ordinary unwinding, not a process abort).
pub fn run_chunks<T, F>(n: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>, usize) -> T + Sync,
{
    match map_chunks(n, threads, work) {
        Ok(v) => v,
        Err(e) => std::panic::resume_unwind(Box::new(e.message)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_items_once() {
        let n = 3 * CHUNK + 17;
        let per_chunk = run_chunks(n, 4, |r, _| r.len());
        assert_eq!(per_chunk.iter().sum::<usize>(), n);
        assert_eq!(per_chunk.len(), 4);
    }

    #[test]
    fn order_and_results_independent_of_thread_count() {
        let n = 5 * CHUNK + 3;
        let work = |r: std::ops::Range<usize>, c: usize| (c, r.start, r.end);
        let one = run_chunks(n, 1, work);
        for t in [2, 3, 8, 64] {
            assert_eq!(run_chunks(n, t, work), one, "threads = {t}");
        }
    }

    #[test]
    fn empty_input() {
        assert!(run_chunks(0, 4, |r, _| r.len()).is_empty());
    }

    #[test]
    fn panicking_chunk_is_contained() {
        let n = 4 * CHUNK;
        for t in [1, 4] {
            let err = map_chunks(n, t, |r, c| {
                if c == 2 {
                    panic!("poisoned chunk");
                }
                r.len()
            })
            .unwrap_err();
            assert_eq!(err.chunk, 2, "threads = {t}");
            assert!(err.message.contains("poisoned chunk"));
        }
    }

    #[test]
    fn scratch_is_reused_per_worker_and_results_stay_deterministic() {
        let n = 6 * CHUNK + 5;
        let one = run_chunks(n, 1, |r, c| (c, r.len()));
        for t in [1, 2, 3, 16] {
            let allocs = AtomicUsize::new(0);
            let got = map_chunks_scratch(
                n,
                t,
                || {
                    allocs.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::new()
                },
                |r, c, scratch| {
                    // Scratch persists across the chunks a worker pulls;
                    // results must not depend on its accumulated contents.
                    scratch.push(c);
                    (c, r.len())
                },
            )
            .unwrap();
            assert_eq!(got, one, "threads = {t}");
            // One scratch per worker, workers capped at the chunk count.
            let workers = t.min(n.div_ceil(CHUNK));
            assert!(
                allocs.load(Ordering::Relaxed) <= workers,
                "threads = {t}: {} scratches for {workers} workers",
                allocs.load(Ordering::Relaxed)
            );
        }
    }

    #[test]
    fn scratch_rebuilt_after_poisoned_chunk() {
        let n = 4 * CHUNK;
        // Sequential single worker: chunk 1 panics mid-mutation; chunks 2/3
        // must see a fresh scratch, not the poisoned one.
        let err = map_chunks_scratch(
            n,
            1,
            || 0usize,
            |_, c, scratch| {
                assert_eq!(*scratch, 0, "chunk {c} saw poisoned scratch");
                *scratch = 1;
                if c == 1 {
                    panic!("poisoned chunk");
                }
                *scratch = 0;
                c
            },
        )
        .unwrap_err();
        assert_eq!(err.chunk, 1);
    }

    #[test]
    fn lowest_failed_chunk_reported() {
        let n = 6 * CHUNK;
        let err = map_chunks(n, 3, |_, c| {
            if c >= 1 {
                panic!("chunk {c}");
            }
            c
        })
        .unwrap_err();
        assert_eq!(err.chunk, 1);
    }
}
