//! A minimal deterministic fork–join runner over fixed-size chunks.
//!
//! Monte Carlo estimation (Theorem 4) is embarrassingly parallel, but the
//! seeded-reproducibility contract of [`crate::sample::Witness`] demands
//! that results not depend on scheduling. The invariants here guarantee
//! that:
//!
//! * the chunking of `0..n` is a pure function of `n` (fixed [`CHUNK`]
//!   size), never of the worker count;
//! * chunk results are returned **in chunk order**, whatever order workers
//!   finished them in;
//! * per-chunk randomness comes from [`crate::sample::WitnessSplitter`],
//!   keyed by chunk index — not from any shared mutable RNG.
//!
//! Consequently `run_chunks(n, 1, work)` and `run_chunks(n, 64, work)`
//! return identical vectors, and any fold over them is thread-count
//! invariant. Threading is `std::thread::scope` only — no external
//! runtime.
//!
//! [`map_chunks`] is the fallible entry point: each chunk runs under
//! `catch_unwind`, so a panicking work closure surfaces as a typed
//! [`ChunkPanicked`] error instead of aborting the process — one poisoned
//! chunk cannot kill a long-running service.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Items per chunk. Small enough to load-balance a few thousand Monte
/// Carlo points across workers, large enough to amortize dispatch.
pub const CHUNK: usize = 512;

/// The item range of chunk `c` within `0..n`.
fn chunk_range(c: usize, n: usize) -> std::ops::Range<usize> {
    let start = c * CHUNK;
    start..((start + CHUNK).min(n))
}

/// The default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A chunk's work closure panicked. The panic was caught inside the worker
/// — the process, the other workers, and the other chunks all survive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkPanicked {
    /// Index of the failed chunk. If several chunks failed, the lowest
    /// index is reported (deterministic for any thread count).
    pub chunk: usize,
    /// The panic payload, if it was a string; `"<non-string panic>"`
    /// otherwise.
    pub message: String,
}

impl std::fmt::Display for ChunkPanicked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chunk {} panicked: {}", self.chunk, self.message)
    }
}
impl std::error::Error for ChunkPanicked {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// Runs `work(range, chunk_index)` for every [`CHUNK`]-sized slice of
/// `0..n` on up to `threads` workers, returning the results in chunk
/// order. The output is identical for every `threads` value.
///
/// Every chunk runs under `catch_unwind`: a panicking closure yields
/// `Err(ChunkPanicked)` (lowest failed chunk) instead of tearing down the
/// process; the remaining chunks still run to completion.
pub fn map_chunks<T, F>(n: usize, threads: usize, work: F) -> Result<Vec<T>, ChunkPanicked>
where
    T: Send,
    F: Fn(std::ops::Range<usize>, usize) -> T + Sync,
{
    let guarded = |c: usize| -> (usize, Result<T, ChunkPanicked>) {
        let r = catch_unwind(AssertUnwindSafe(|| work(chunk_range(c, n), c)));
        (
            c,
            r.map_err(|payload| ChunkPanicked {
                chunk: c,
                message: panic_message(payload),
            }),
        )
    };
    let n_chunks = n.div_ceil(CHUNK);
    let threads = threads.clamp(1, n_chunks.max(1));
    let mut tagged: Vec<(usize, Result<T, ChunkPanicked>)> = if threads == 1 || n_chunks <= 1 {
        (0..n_chunks).map(guarded).collect()
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut out = Vec::new();
                        loop {
                            let c = next.fetch_add(1, Ordering::Relaxed);
                            if c >= n_chunks {
                                break;
                            }
                            out.push(guarded(c));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(v) => v,
                    // catch_unwind already contains work panics; a join
                    // failure would mean the panic escaped (e.g. raised
                    // while dropping the payload). Surface it, don't abort.
                    Err(payload) => vec![(
                        usize::MAX,
                        Err(ChunkPanicked {
                            chunk: usize::MAX,
                            message: panic_message(payload),
                        }),
                    )],
                })
                .collect()
        })
    };
    tagged.sort_unstable_by_key(|&(c, _)| c);
    tagged.into_iter().map(|(_, t)| t).collect()
}

/// Infallible variant of [`map_chunks`] for work closures that cannot
/// panic; if one does anyway, the panic is re-raised on the calling thread
/// (ordinary unwinding, not a process abort).
pub fn run_chunks<T, F>(n: usize, threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(std::ops::Range<usize>, usize) -> T + Sync,
{
    match map_chunks(n, threads, work) {
        Ok(v) => v,
        Err(e) => std::panic::resume_unwind(Box::new(e.message)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_items_once() {
        let n = 3 * CHUNK + 17;
        let per_chunk = run_chunks(n, 4, |r, _| r.len());
        assert_eq!(per_chunk.iter().sum::<usize>(), n);
        assert_eq!(per_chunk.len(), 4);
    }

    #[test]
    fn order_and_results_independent_of_thread_count() {
        let n = 5 * CHUNK + 3;
        let work = |r: std::ops::Range<usize>, c: usize| (c, r.start, r.end);
        let one = run_chunks(n, 1, work);
        for t in [2, 3, 8, 64] {
            assert_eq!(run_chunks(n, t, work), one, "threads = {t}");
        }
    }

    #[test]
    fn empty_input() {
        assert!(run_chunks(0, 4, |r, _| r.len()).is_empty());
    }

    #[test]
    fn panicking_chunk_is_contained() {
        let n = 4 * CHUNK;
        for t in [1, 4] {
            let err = map_chunks(n, t, |r, c| {
                if c == 2 {
                    panic!("poisoned chunk");
                }
                r.len()
            })
            .unwrap_err();
            assert_eq!(err.chunk, 2, "threads = {t}");
            assert!(err.message.contains("poisoned chunk"));
        }
    }

    #[test]
    fn lowest_failed_chunk_reported() {
        let n = 6 * CHUNK;
        let err = map_chunks(n, 3, |_, c| {
            if c >= 1 {
                panic!("chunk {c}");
            }
            c
        })
        .unwrap_err();
        assert_eq!(err.chunk, 1);
    }
}
