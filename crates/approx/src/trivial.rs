//! Proposition 4: the trivial `ε ≥ 1/2` approximation *is* definable in
//! FO+LIN.
//!
//! "If the volume is not 0 or 1, then 1/2 is the ε-approximation." The
//! three-way case split is first-order: the set (clipped to `I^n`) has
//! volume 0 iff its interior is empty, and volume 1 iff its complement's
//! interior (inside the box) is empty — both expressible, and here decided
//! with the QE engine. Theorem 2 shows this is the best any FO+Ω language
//! can do: no `VOL_I^ε` with `ε < 1/2` is definable.

use cqa_arith::{rat, Rat};
use cqa_logic::{Atom, Formula, Rel};
use cqa_poly::{MPoly, Var};
use cqa_qe::QeError;

/// The FO+LIN-definable trivial approximator: returns 0 if the set has
/// empty interior in `I^n`, 1 if its complement does, and 1/2 otherwise.
/// Guarantees `|result − VOL_I| ≤ 1/2` with equality impossible except in
/// the exactly-resolved endpoint cases — i.e. a valid `VOL_I^ε` for every
/// `ε ≥ 1/2`.
pub fn trivial_volume_approximation(f: &Formula, vars: &[Var]) -> Result<Rat, QeError> {
    let strict = strictify(&cqa_logic::nnf(f));
    let box_open = open_unit_box(vars);
    // Interior of the set within the open box.
    let inside = strict.clone().and(box_open.clone());
    if !cqa_qe::is_satisfiable(&inside)? {
        return Ok(Rat::zero());
    }
    // Interior of the complement within the open box.
    let outside = strictify(&cqa_logic::nnf(&f.clone().negate())).and(box_open);
    if !cqa_qe::is_satisfiable(&outside)? {
        return Ok(Rat::one());
    }
    Ok(rat(1, 2))
}

/// Replaces every weak atom of an NNF formula with its strict version: the
/// resulting set is the "measure-theoretic interior proxy" — for linear
/// constraint sets it is non-empty iff the set has positive measure.
fn strictify(f: &Formula) -> Formula {
    match f {
        Formula::Atom(a) => {
            let rel = match a.rel {
                Rel::Le => Rel::Lt,
                Rel::Ge => Rel::Gt,
                Rel::Eq => return Formula::False,
                other => other,
            };
            Formula::Atom(Atom::new(a.poly.clone(), rel))
        }
        Formula::And(fs) => fs.iter().map(strictify).fold(Formula::True, Formula::and),
        Formula::Or(fs) => fs.iter().map(strictify).fold(Formula::False, Formula::or),
        other => other.clone(),
    }
}

fn open_unit_box(vars: &[Var]) -> Formula {
    let mut f = Formula::True;
    for &v in vars {
        f = f.and(Formula::lt(MPoly::zero(), MPoly::var(v)));
        f = f.and(Formula::lt(MPoly::var(v), MPoly::one()));
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_geom::volume_in_unit_box;
    use cqa_logic::{parse_formula_with, VarMap};

    fn approx(src: &str, names: &[&str]) -> Rat {
        let mut vars = VarMap::new();
        let vs: Vec<Var> = names.iter().map(|n| vars.intern(n)).collect();
        let f = parse_formula_with(src, &mut vars).unwrap();
        trivial_volume_approximation(&f, &vs).unwrap()
    }

    #[test]
    fn endpoint_cases_resolved_exactly() {
        assert_eq!(approx("false", &["x", "y"]), Rat::zero());
        assert_eq!(approx("x = 0.5", &["x", "y"]), Rat::zero()); // null set
        assert_eq!(approx("true", &["x", "y"]), Rat::one());
        assert_eq!(approx("x >= 0", &["x", "y"]), Rat::one()); // covers the box
    }

    #[test]
    fn middle_cases_get_one_half() {
        assert_eq!(approx("x + y <= 1", &["x", "y"]), rat(1, 2));
        assert_eq!(approx("x >= 0.9", &["x", "y"]), rat(1, 2));
    }

    #[test]
    fn error_is_at_most_half() {
        let mut vars = VarMap::new();
        let vs: Vec<Var> = ["x", "y"].iter().map(|n| vars.intern(n)).collect();
        for src in [
            "x + y <= 1",
            "x >= 0.25 & y >= 0.25",
            "x <= 0.1",
            "x = 0.5",
            "true",
            "false",
            "(x <= 0.3 & y <= 0.3) | (x >= 0.7 & y >= 0.7)",
        ] {
            let f = parse_formula_with(src, &mut vars).unwrap();
            let est = trivial_volume_approximation(&f, &vs).unwrap();
            let truth = volume_in_unit_box(&f, &vs).unwrap();
            let err = (est.clone() - truth).abs();
            assert!(err <= rat(1, 2), "{src}: est {est}, err {err}");
        }
    }
}
