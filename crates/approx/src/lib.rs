//! Approximate aggregation: VC dimension, sampling, and the paper's
//! baselines (Sections 3, 4 and 6.2).
//!
//! * [`vc`] — Vapnik–Chervonenkis machinery: exact shattering decisions
//!   via quantifier elimination, empirical VC dimension of definable
//!   families over a database, the Proposition-5 family with
//!   `VCdim ≥ log|D|`, and the effective Goldberg–Jerrum constant of
//!   Proposition 6.
//! * [`sample`] — the Blumer–Ehrenfeucht–Haussler–Warmuth sample bound
//!   `M(ε, δ, d)` and the witness operator `W` (uniform sampling of the
//!   unit cube with exact dyadic rationals).
//! * [`mc`] — Theorem 4: a single shared sample approximates
//!   `VOL_I(φ(ā, D))` uniformly over all parameter vectors `ā` with
//!   probability ≥ 1 − δ.
//! * [`km`] — a cost model for the Karpinski–Macintyre / Koiran
//!   derandomized approximation formulas, reproducing the Section-3 blow-up
//!   numbers (≥10⁹ atoms, ≥10¹¹ quantifiers at ε = 1/10).
//! * [`trivial`] — Proposition 4: the trivial ε ≥ 1/2 approximator that
//!   *is* definable in FO+LIN.
//! * [`separating`] — Proposition 1 / Theorem 2 made empirical:
//!   (c₁,c₂)-separating sentence candidates and the good-instance →
//!   interval-volume reduction from the proof of Theorem 2.
//! * [`john`] — the Löwner–John relative approximation for convex outputs
//!   (Section 4.3 remark), via Khachiyan's minimum-volume enclosing
//!   ellipsoid.
//! * [`baselines`] — the variable-independence exact baseline
//!   (Chomicki–Goldin–Kuper) and a Dyer–Frieze–Kannan-style randomized
//!   volume estimator (rejection and hit-and-run).

#![forbid(unsafe_code)]

pub mod baselines;
pub mod error;
pub mod john;
pub mod km;
pub mod mc;
pub mod par;
pub mod sample;
pub mod separating;
pub mod trivial;
pub mod vc;

pub use error::ApproxError;
