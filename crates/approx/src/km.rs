//! A cost model for the Karpinski–Macintyre / Koiran approximation
//! formulas (the Section-3 blow-up analysis).
//!
//! The VC-dimension-based `VOL_I^ε` of Lemma 1 is constructed by (i)
//! replacing database relations by their definitions, (ii) quantifying over
//! an `M(ε, δ, d)`-point sample of `I^m`, and (iii) derandomizing the
//! sampling à la BPP ⊆ PH with translates covering the cube. The paper's
//! point — driven home by the worked example (`≥ 10⁹` atomic subformulas
//! and `≥ 10¹¹` quantifiers already at `ε = 1/10`) — is that the resulting
//! formulas are hopeless inputs for quantifier elimination.
//!
//! This module instantiates that construction as an explicit cost model so
//! the blow-up is a number the benches can print, not an anecdote:
//!
//! * sample size `M = max((4/ε)log₂(2/δ), (8d/ε)log₂(13/ε))`;
//! * sample variables `M·m`, all quantified;
//! * translate count `K = M·m` (the BPP ⊆ PH covering uses ~dimension-many
//!   translates), each translate re-instantiating the `M`-point membership
//!   test;
//! * per membership test, the body formula's atoms (`s₀` after database
//!   substitution).
//!
//! Every component is a *lower* bound on the real construction of
//! [24, 25, 26], so the model's numbers under-approximate the true sizes.

use crate::sample::sample_size;
use crate::vc::goldberg_jerrum_c;

/// Estimated size of the derandomized ε-approximation formula.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KmCost {
    /// VC dimension (bound) used for the sample size.
    pub vc_dim: f64,
    /// Sample size `M`.
    pub sample_size: usize,
    /// Number of quantified real variables.
    pub quantifiers: f64,
    /// Number of atomic subformulas.
    pub atoms: f64,
}

/// Cost of the Lemma-1 construction for a query whose database-substituted
/// matrix has `s0` atoms over `m` point dimensions, against a database of
/// active-domain size `n`, with accuracy `ε` and confidence `1 − δ`.
///
/// `k`, `p`, `q`, `deg` feed the Goldberg–Jerrum constant of Proposition 6
/// (point arity, max relation arity, quantifier rank, max degree).
#[allow(clippy::too_many_arguments)]
pub fn km_cost(
    eps: f64,
    delta: f64,
    m: usize,
    s0: usize,
    n: usize,
    k: u32,
    p: u32,
    q: u32,
    deg: u32,
) -> KmCost {
    let c = goldberg_jerrum_c(k, p, q, deg, s0 as u32);
    let d = c * (n.max(2) as f64).log2();
    let msize = sample_size(eps, delta, d);
    let sample_vars = (msize as f64) * (m as f64);
    let translates = sample_vars; // K ≈ M·m
    let quantifiers = translates * sample_vars + sample_vars;
    let atoms = translates * (msize as f64) * (s0 as f64);
    KmCost {
        vc_dim: d,
        sample_size: msize,
        quantifiers,
        atoms,
    }
}

/// A budget for the KM construction: how large an approximation formula a
/// caller is willing to hand to the QE engine.
///
/// The default (`10⁸` atoms, `10⁸` quantifiers) is already far beyond
/// anything `cqa-qe` finishes in practice; the point of the gate is to
/// refuse *before* materializing a hopeless formula, turning the paper's
/// Section-3 anecdote into an enforced precondition.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KmBudget {
    /// Maximum admissible atom count.
    pub max_atoms: f64,
    /// Maximum admissible quantifier count.
    pub max_quantifiers: f64,
}

impl Default for KmBudget {
    fn default() -> KmBudget {
        KmBudget {
            max_atoms: 1e8,
            max_quantifiers: 1e8,
        }
    }
}

/// Rejection by [`gate`]: the predicted formula exceeds the budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KmBlowup {
    /// The predicted cost that tripped the gate.
    pub cost: KmCost,
    /// The budget it was measured against.
    pub budget: KmBudget,
}

impl std::fmt::Display for KmBlowup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "KM approximation formula would have ~{:.2e} atoms and ~{:.2e} quantifiers \
             (budget: {:.1e} atoms, {:.1e} quantifiers)",
            self.cost.atoms,
            self.cost.quantifiers,
            self.budget.max_atoms,
            self.budget.max_quantifiers
        )
    }
}
impl std::error::Error for KmBlowup {}

/// Checks a predicted [`KmCost`] against a [`KmBudget`], returning the cost
/// on success and a [`KmBlowup`] describing the overrun otherwise.
pub fn gate(cost: KmCost, budget: KmBudget) -> Result<KmCost, KmBlowup> {
    if cost.atoms > budget.max_atoms || cost.quantifiers > budget.max_quantifiers {
        Err(KmBlowup { cost, budget })
    } else {
        Ok(cost)
    }
}

/// The Section-3 worked example: schema `U` unary over `[0,1]`, the query
///
/// `φ(x₁,x₂; y₁,y₂) ≡ U(x₁) ∧ U(x₂) ∧ x₁<y₁ ∧ y₁<x₂ ∧ 0≤y₂ ∧ y₂≤y₁`
///
/// with `|U| = n` and `ε = 1/10`. Substituting `U` yields `> 2n` atoms;
/// the paper reports ≥ 10⁹ atoms and ≥ 10¹¹ quantifiers for the resulting
/// approximation formula.
pub fn paper_example_cost(n: usize, eps: f64) -> KmCost {
    // After substituting U (n disjuncts each occurrence) the matrix has
    // 2n + 4 atoms; m = 2 point variables; query data: k = 2 point vars,
    // p = 1 (U unary), quantifier rank 0, degree 1.
    km_cost(eps, 0.25, 2, 2 * n + 4, n, 2, 1, 0, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_exceeds_reported_bounds() {
        // The paper: "at least 10⁹ atomic subformulae, and at least 10¹¹
        // quantifiers" at ε = 1/10. Our under-approximating model must
        // agree for moderate database sizes.
        let cost = paper_example_cost(16, 0.1);
        assert!(cost.atoms >= 1e9, "atoms = {:.3e}", cost.atoms);
        assert!(
            cost.quantifiers >= 1e11,
            "quantifiers = {:.3e}",
            cost.quantifiers
        );
    }

    #[test]
    fn blowup_grows_with_accuracy() {
        let loose = paper_example_cost(16, 0.5);
        let tight = paper_example_cost(16, 0.05);
        assert!(tight.atoms > loose.atoms * 10.0);
        assert!(tight.sample_size > loose.sample_size);
    }

    #[test]
    fn blowup_grows_with_database() {
        let small = paper_example_cost(8, 0.1);
        let large = paper_example_cost(64, 0.1);
        assert!(large.atoms > small.atoms);
        assert!(large.vc_dim > small.vc_dim);
    }

    #[test]
    fn gate_rejects_paper_example_and_admits_tiny_queries() {
        let budget = KmBudget::default();
        // The worked example blows past any sane budget.
        let err = gate(paper_example_cost(16, 0.1), budget).unwrap_err();
        assert!(err.cost.atoms > budget.max_atoms);
        assert!(err.to_string().contains("atoms"));
        // A trivial query at loose accuracy stays within a generous budget.
        let loose = KmBudget {
            max_atoms: 1e12,
            max_quantifiers: 1e14,
        };
        assert!(gate(km_cost(0.5, 0.5, 1, 2, 2, 1, 1, 0, 1), loose).is_ok());
    }

    #[test]
    fn components_consistent() {
        let c = km_cost(0.1, 0.1, 2, 10, 10, 2, 1, 0, 1);
        assert!(c.sample_size > 0);
        assert!(c.quantifiers > c.sample_size as f64);
        assert!(c.atoms > 0.0);
    }
}
