//! Sample-size bounds and the witness operator `W`.

use cqa_arith::Rat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Blumer–Ehrenfeucht–Haussler–Warmuth sample size: with
/// `M > max((4/ε)·log₂(2/δ), (8d/ε)·log₂(13/ε))` uniform points, the
/// empirical fraction is within `ε` of the measure *simultaneously for
/// every set of a VC-dimension-`d` family*, with probability ≥ 1 − δ
/// (paper §3).
pub fn sample_size(eps: f64, delta: f64, d: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0 && delta > 0.0 && delta < 1.0 && d >= 0.0);
    let a = (4.0 / eps) * (2.0 / delta).log2();
    let b = (8.0 * d / eps) * (13.0 / eps).log2();
    a.max(b).ceil() as usize + 1
}

/// The witness (choice) operator `W` of Abiteboul–Vianu, as used in
/// Theorem 4: a seeded source of random choices. Each call is one
/// application of `W` in the paper's operation count.
pub struct Witness {
    rng: StdRng,
    calls: usize,
}

impl Witness {
    /// A deterministic witness source (seeded — experiments are
    /// reproducible).
    pub fn new(seed: u64) -> Witness {
        Witness { rng: StdRng::seed_from_u64(seed), calls: 0 }
    }

    /// How many witness applications have been made.
    pub fn calls(&self) -> usize {
        self.calls
    }

    /// `W y⃗.(y⃗ ∈ I^dim)`: a uniform point of the unit cube, as exact
    /// dyadic rationals (the `f64` values convert exactly).
    pub fn uniform_unit_point(&mut self, dim: usize) -> Vec<Rat> {
        self.calls += 1;
        (0..dim)
            .map(|_| Rat::from_f64(self.rng.random::<f64>()).expect("finite"))
            .collect()
    }

    /// An entire `m`-point sample from `I^dim` (`m` witness applications —
    /// the count Theorem 4 bounds).
    pub fn uniform_sample(&mut self, m: usize, dim: usize) -> Vec<Vec<Rat>> {
        (0..m).map(|_| self.uniform_unit_point(dim)).collect()
    }

    /// `W x.φ(x)` over a finite set: picks one element uniformly, `None`
    /// on the empty set.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        self.calls += 1;
        if items.is_empty() {
            None
        } else {
            let i = self.rng.random_range(0..items.len());
            Some(&items[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_monotonicity() {
        let base = sample_size(0.1, 0.1, 4.0);
        assert!(sample_size(0.05, 0.1, 4.0) > base); // tighter ε
        assert!(sample_size(0.1, 0.01, 4.0) >= base); // tighter δ
        assert!(sample_size(0.1, 0.1, 8.0) > base); // richer family
    }

    #[test]
    fn sample_size_formula() {
        // d = 0 leaves only the δ term.
        let m = sample_size(0.5, 0.5, 0.0);
        assert_eq!(m, ((4.0 / 0.5) * (2.0f64 / 0.5).log2()).ceil() as usize + 1);
    }

    #[test]
    fn witness_reproducibility() {
        let mut w1 = Witness::new(7);
        let mut w2 = Witness::new(7);
        assert_eq!(w1.uniform_sample(5, 2), w2.uniform_sample(5, 2));
        let mut w3 = Witness::new(8);
        assert_ne!(w1.uniform_sample(5, 2), w3.uniform_sample(5, 2));
    }

    #[test]
    fn points_inside_unit_cube() {
        let mut w = Witness::new(42);
        for p in w.uniform_sample(50, 3) {
            for c in p {
                assert!(!c.is_negative() && c <= cqa_arith::Rat::one());
            }
        }
        assert_eq!(w.calls(), 50);
    }

    #[test]
    fn choose_from_finite_sets() {
        let mut w = Witness::new(1);
        assert!(w.choose::<i32>(&[]).is_none());
        let xs = [10, 20, 30];
        for _ in 0..10 {
            assert!(xs.contains(w.choose(&xs).unwrap()));
        }
    }
}
