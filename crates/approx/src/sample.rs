//! Sample-size bounds and the witness operator `W`.

use cqa_arith::Rat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Blumer–Ehrenfeucht–Haussler–Warmuth sample size: with
/// `M > max((4/ε)·log₂(2/δ), (8d/ε)·log₂(13/ε))` uniform points, the
/// empirical fraction is within `ε` of the measure *simultaneously for
/// every set of a VC-dimension-`d` family*, with probability ≥ 1 − δ
/// (paper §3).
///
/// # Panics
/// Panics if `ε ∉ (0, 1)`, `δ ∉ (0, 1)` or `d < 0`; use
/// [`try_sample_size`] when the parameters come from untrusted input.
pub fn sample_size(eps: f64, delta: f64, d: f64) -> usize {
    match try_sample_size(eps, delta, d) {
        Ok(m) => m,
        Err(e) => panic!("sample_size: {e}"),
    }
}

/// [`sample_size`] with a typed error instead of a panic on out-of-range
/// parameters (`ε, δ ∈ (0, 1)`, `d ≥ 0`).
pub fn try_sample_size(eps: f64, delta: f64, d: f64) -> Result<usize, crate::ApproxError> {
    if !(eps > 0.0 && eps < 1.0) {
        return Err(crate::ApproxError::InvalidParameter(format!(
            "ε must lie in (0, 1), got {eps}"
        )));
    }
    if !(delta > 0.0 && delta < 1.0) {
        return Err(crate::ApproxError::InvalidParameter(format!(
            "δ must lie in (0, 1), got {delta}"
        )));
    }
    if d < 0.0 || d.is_nan() {
        return Err(crate::ApproxError::InvalidParameter(format!(
            "VC dimension bound must be ≥ 0, got {d}"
        )));
    }
    let a = (4.0 / eps) * (2.0 / delta).log2();
    let b = (8.0 * d / eps) * (13.0 / eps).log2();
    Ok(a.max(b).ceil() as usize + 1)
}

/// The witness (choice) operator `W` of Abiteboul–Vianu, as used in
/// Theorem 4: a seeded source of random choices. Each call is one
/// application of `W` in the paper's operation count.
pub struct Witness {
    rng: StdRng,
    seed: u64,
    streams: u64,
    calls: usize,
}

impl Witness {
    /// A deterministic witness source (seeded — experiments are
    /// reproducible).
    pub fn new(seed: u64) -> Witness {
        Witness {
            rng: StdRng::seed_from_u64(seed),
            seed,
            streams: 0,
            calls: 0,
        }
    }

    /// How many witness applications have been made.
    pub fn calls(&self) -> usize {
        self.calls
    }

    /// Begins an independent family of deterministic substreams, for
    /// chunked parallel sampling.
    ///
    /// The returned splitter derives a child witness per chunk index from
    /// the base seed and a per-call stream counter alone — never from the
    /// live RNG state — so the points drawn for chunk `c` are the same for
    /// any thread count and any chunk completion order, and successive
    /// forks from the same witness yield unrelated streams.
    pub fn fork(&mut self) -> WitnessSplitter {
        self.streams += 1;
        WitnessSplitter {
            seed: self.seed,
            stream: self.streams,
        }
    }

    /// Records `n` witness applications performed through a fork on this
    /// witness's behalf (keeps the Theorem 4 operation count meaningful).
    pub(crate) fn note_applications(&mut self, n: usize) {
        self.calls += n;
    }

    /// `W y⃗.(y⃗ ∈ I^dim)`: a uniform point of the unit cube, as exact
    /// dyadic rationals (the `f64` values convert exactly).
    pub fn uniform_unit_point(&mut self, dim: usize) -> Vec<Rat> {
        self.calls += 1;
        (0..dim)
            .map(|_| Rat::from_f64(self.rng.random::<f64>()).expect("finite"))
            .collect()
    }

    /// [`Self::uniform_unit_point`] without the rational wrapping: fills
    /// `out` with the same draws as exactly-representable dyadic `f64`s
    /// (one witness application). The compiled-kernel hot path uses this to
    /// avoid constructing rationals for points that never need the exact
    /// fallback.
    pub fn uniform_unit_point_f64(&mut self, out: &mut [f64]) {
        self.calls += 1;
        for c in out.iter_mut() {
            *c = self.rng.random::<f64>();
        }
    }

    /// An entire `m`-point sample from `I^dim` (`m` witness applications —
    /// the count Theorem 4 bounds).
    pub fn uniform_sample(&mut self, m: usize, dim: usize) -> Vec<Vec<Rat>> {
        (0..m).map(|_| self.uniform_unit_point(dim)).collect()
    }

    /// Fills the point-variable columns of `batch` — slots `first_slot ..
    /// first_slot + dim` — with one uniform unit-cube point per active
    /// lane, straight into the structure-of-arrays buffers (no per-point
    /// allocation). Draws are made lane-major (point 0's coordinates in
    /// order, then point 1's, …), the exact sequence a per-point
    /// [`Self::uniform_unit_point_f64`] loop would make, so batched and
    /// per-point estimators see identical samples. Counts one witness
    /// application per lane. Coordinates are exactly representable
    /// dyadics, so the filled columns are exact.
    pub fn fill_unit_columns(
        &mut self,
        batch: &mut cqa_logic::Batch,
        first_slot: usize,
        dim: usize,
    ) {
        let len = batch.len();
        self.calls += len;
        for lane in 0..len {
            for d in 0..dim {
                batch.col_mut(first_slot + d)[lane] = self.rng.random::<f64>();
            }
        }
    }

    /// `W x.φ(x)` over a finite set: picks one element uniformly, `None`
    /// on the empty set.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        self.calls += 1;
        if items.is_empty() {
            None
        } else {
            let i = self.rng.random_range(0..items.len());
            Some(&items[i])
        }
    }
}

/// A handle deriving per-chunk child witnesses (see [`Witness::fork`]).
/// `Copy` so worker threads can share it freely.
#[derive(Clone, Copy, Debug)]
pub struct WitnessSplitter {
    seed: u64,
    stream: u64,
}

impl WitnessSplitter {
    /// The deterministic child witness for chunk `chunk`: a pure function
    /// of `(seed, stream, chunk)`.
    pub fn chunk(&self, chunk: u64) -> Witness {
        let mut h = self
            .seed
            .wrapping_add(self.stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(chunk.wrapping_mul(0xD1B5_4A32_D192_ED03));
        // SplitMix64 finalizer: decorrelates nearby (stream, chunk) pairs.
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Witness::new(h ^ (h >> 31))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_monotonicity() {
        let base = sample_size(0.1, 0.1, 4.0);
        assert!(sample_size(0.05, 0.1, 4.0) > base); // tighter ε
        assert!(sample_size(0.1, 0.01, 4.0) >= base); // tighter δ
        assert!(sample_size(0.1, 0.1, 8.0) > base); // richer family
    }

    #[test]
    fn sample_size_formula() {
        // d = 0 leaves only the δ term.
        let m = sample_size(0.5, 0.5, 0.0);
        assert_eq!(m, ((4.0 / 0.5) * (2.0f64 / 0.5).log2()).ceil() as usize + 1);
    }

    #[test]
    fn witness_reproducibility() {
        let mut w1 = Witness::new(7);
        let mut w2 = Witness::new(7);
        assert_eq!(w1.uniform_sample(5, 2), w2.uniform_sample(5, 2));
        let mut w3 = Witness::new(8);
        assert_ne!(w1.uniform_sample(5, 2), w3.uniform_sample(5, 2));
    }

    #[test]
    fn points_inside_unit_cube() {
        let mut w = Witness::new(42);
        for p in w.uniform_sample(50, 3) {
            for c in p {
                assert!(!c.is_negative() && c <= cqa_arith::Rat::one());
            }
        }
        assert_eq!(w.calls(), 50);
    }

    #[test]
    fn fork_chunks_are_deterministic_and_separated() {
        let mut w1 = Witness::new(9);
        let mut w2 = Witness::new(9);
        let (s1, s2) = (w1.fork(), w2.fork());
        // Same seed, same stream, same chunk → same points.
        assert_eq!(
            s1.chunk(0).uniform_sample(3, 2),
            s2.chunk(0).uniform_sample(3, 2)
        );
        // Different chunks of one stream differ.
        assert_ne!(
            s1.chunk(0).uniform_sample(3, 2),
            s1.chunk(1).uniform_sample(3, 2)
        );
        // A later fork of the same witness yields an unrelated stream.
        let s1b = w1.fork();
        assert_ne!(
            s1.chunk(0).uniform_sample(3, 2),
            s1b.chunk(0).uniform_sample(3, 2)
        );
    }

    #[test]
    fn f64_points_match_rational_points() {
        let mut a = Witness::new(4);
        let mut b = Witness::new(4);
        let p = a.uniform_unit_point(3);
        let mut q = [0.0f64; 3];
        b.uniform_unit_point_f64(&mut q);
        for (r, v) in p.iter().zip(q) {
            assert_eq!(r, &Rat::from_f64(v).unwrap());
        }
        assert_eq!(b.calls(), 1);
    }

    #[test]
    fn column_fill_matches_per_point_draws() {
        let mut a = Witness::new(11);
        let mut b = Witness::new(11);
        let mut batch = cqa_logic::Batch::new(3);
        batch.set_len(5);
        a.fill_unit_columns(&mut batch, 0, 3);
        let mut q = [0.0f64; 3];
        for lane in 0..5 {
            b.uniform_unit_point_f64(&mut q);
            for (d, &v) in q.iter().enumerate() {
                assert_eq!(batch.value(d, lane), v, "lane {lane} dim {d}");
            }
        }
        assert_eq!(a.calls(), b.calls());
    }

    #[test]
    fn choose_from_finite_sets() {
        let mut w = Witness::new(1);
        assert!(w.choose::<i32>(&[]).is_none());
        let xs = [10, 20, 30];
        for _ in 0..10 {
            assert!(xs.contains(w.choose(&xs).unwrap()));
        }
    }
}
