//! The seeded-reproducibility contract under threading: every Monte Carlo
//! entry point returns *bit-identical* results for any worker count,
//! because points are drawn from per-chunk witness substreams (pure
//! functions of seed, stream and chunk index) and chunk tallies combine in
//! chunk order with exact rational arithmetic.

use cqa_approx::mc::{
    mc_average_over_threads, mc_volume_in_unit_box_threads, UniformVolumeEstimator,
};
use cqa_approx::sample::Witness;
use cqa_arith::{rat, Rat};
use cqa_core::Database;
use cqa_logic::{parse_formula_with, Formula};
use cqa_poly::{MPoly, Var};

const THREADS: [usize; 3] = [1, 2, 8];

fn triangle(db: &mut Database) -> (Formula, Vec<Var>) {
    let x = db.vars_mut().intern("x");
    let y = db.vars_mut().intern("y");
    let f = parse_formula_with("x >= 0 & y >= 0 & x + y <= 1", db.vars_mut()).unwrap();
    (f, vec![x, y])
}

#[test]
fn volume_identical_across_thread_counts() {
    // m = 1500 spans several 512-point chunks, so > 1 worker really runs.
    let mut db = Database::new();
    let (f, vs) = triangle(&mut db);
    let runs: Vec<Rat> = THREADS
        .iter()
        .map(|&t| {
            let mut w = Witness::new(2024);
            mc_volume_in_unit_box_threads(&db, &f, &vs, 1500, &mut w, t).unwrap()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[0], runs[2]);
    // And the estimate is a real one: the triangle has volume 1/2.
    assert!((runs[0].to_f64() - 0.5).abs() < 0.05, "{:?}", runs[0]);
}

#[test]
fn average_identical_across_thread_counts() {
    let mut db = Database::new();
    let (f, vs) = triangle(&mut db);
    let p = MPoly::var(vs[0]); // E[x] over the triangle = 1/3
    let runs: Vec<Rat> = THREADS
        .iter()
        .map(|&t| {
            let mut w = Witness::new(77);
            mc_average_over_threads(&db, &f, &vs, &p, 1500, &mut w, t)
                .unwrap()
                .unwrap()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[0], runs[2]);
    assert!((runs[0].to_f64() - 1.0 / 3.0).abs() < 0.05, "{:?}", runs[0]);
}

#[test]
fn shared_sample_estimates_identical_across_thread_counts() {
    // Parametric family: [0, a] × [0, 1]; VOL = a on the unit cube.
    let mut db = Database::new();
    let a = db.vars_mut().intern("a");
    let x = db.vars_mut().intern("x");
    let y = db.vars_mut().intern("y");
    let f = parse_formula_with("x >= 0 & x <= a & y >= 0 & y <= 1", db.vars_mut()).unwrap();
    let mut w = Witness::new(5);
    let est = UniformVolumeEstimator::new(&db, &f, &[a], &[x, y], 0.05, 0.1, 3.0, &mut w).unwrap();
    assert!(est.sample_len() > 512, "need multiple chunks");
    for av in [rat(1, 4), rat(1, 2), rat(3, 4)] {
        let base = est
            .estimate_with_threads(std::slice::from_ref(&av), 1)
            .unwrap();
        for t in [2, 8] {
            assert_eq!(
                Ok(base.clone()),
                est.estimate_with_threads(std::slice::from_ref(&av), t),
                "threads = {t}"
            );
        }
        assert!((base.to_f64() - av.to_f64()).abs() < 0.05);
    }
}
