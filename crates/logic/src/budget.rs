//! Cooperative evaluation budgets: deadlines, step limits, atom limits.
//!
//! Every exact evaluation path in this workspace — Fourier–Motzkin,
//! Loos–Weispfenning, Cohen–Hörmander, SAF enumeration, Σ-term evaluation —
//! is worst-case (doubly) exponential; the paper's Section 3 quantifies the
//! blow-up (≥10⁹ atoms for ε = 1/10). A production service cannot let one
//! query wedge a worker thread forever, so the hot recursive loops accept an
//! [`EvalBudget`] and call [`EvalBudget::check`] cooperatively: when the
//! budget is exhausted, evaluation unwinds with a typed [`BudgetExceeded`]
//! error instead of hanging or dying. Callers can then degrade gracefully —
//! e.g. fall back from exact volume to the Monte Carlo estimator with a
//! certified (ε, δ) bound (see `cqa_agg::volume_with_fallback`).
//!
//! `check()` is designed for inner loops: one relaxed atomic increment, and
//! the (comparatively expensive) monotonic-clock read only every
//! [`CLOCK_PERIOD`] steps. The budget only ever *aborts* work, never alters
//! it, so results are bit-identical with and without a budget whenever the
//! budget is not hit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How many [`EvalBudget::check`] calls elapse between deadline probes.
/// Small enough that a 10 ms deadline trips promptly even in heavy
/// case-splitting loops, large enough that `Instant::now()` stays off the
/// hot path.
pub const CLOCK_PERIOD: u64 = 64;

/// Which budgeted resource ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetResource {
    /// The wall-clock deadline passed.
    Deadline,
    /// The cooperative step counter crossed `max_steps`.
    Steps,
    /// An intermediate formula grew past `max_atoms` atoms.
    Atoms,
}

/// Typed cancellation: the evaluation exceeded its [`EvalBudget`].
///
/// Carried through `QeError::Budget`, `SafetyError::Budget` and
/// `AggError::Budget` so any caller can distinguish "the query is wrong"
/// from "the query is too expensive" and react (retry bigger, degrade to an
/// approximation, shed load).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The resource that ran out.
    pub resource: BudgetResource,
    /// Cooperative steps taken when the budget tripped.
    pub steps: u64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.resource {
            BudgetResource::Deadline => "deadline passed",
            BudgetResource::Steps => "step limit reached",
            BudgetResource::Atoms => "intermediate formula exceeded the atom limit",
        };
        write!(
            f,
            "evaluation budget exceeded after {} step(s): {what}",
            self.steps
        )
    }
}
impl std::error::Error for BudgetExceeded {}

/// A cooperative evaluation budget.
///
/// Construct with [`EvalBudget::unlimited`] and narrow with the builder
/// methods; thread `&EvalBudget` through evaluation. The step counter is
/// atomic, so one budget may be shared by the parallel Monte Carlo workers
/// and still observed coherently.
///
/// ```
/// use cqa_logic::budget::EvalBudget;
/// let b = EvalBudget::unlimited().with_max_steps(2);
/// assert!(b.check().is_ok());
/// assert!(b.check().is_ok());
/// assert!(b.check().is_err()); // third step crosses the limit
/// ```
#[derive(Debug)]
pub struct EvalBudget {
    deadline: Option<Instant>,
    max_steps: u64,
    max_atoms: u64,
    steps: AtomicU64,
}

impl Default for EvalBudget {
    fn default() -> EvalBudget {
        EvalBudget::unlimited()
    }
}

impl EvalBudget {
    /// A budget that never trips (the default for all legacy entry points).
    pub fn unlimited() -> EvalBudget {
        EvalBudget {
            deadline: None,
            max_steps: u64::MAX,
            max_atoms: u64::MAX,
            steps: AtomicU64::new(0),
        }
    }

    /// Trips once the wall clock passes `now + timeout`.
    #[must_use]
    pub fn with_deadline(mut self, timeout: Duration) -> EvalBudget {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Trips once more than `max_steps` cooperative steps have been taken.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u64) -> EvalBudget {
        self.max_steps = max_steps;
        self
    }

    /// Trips when [`EvalBudget::check_atoms`] sees a formula with more than
    /// `max_atoms` atoms.
    #[must_use]
    pub fn with_max_atoms(mut self, max_atoms: u64) -> EvalBudget {
        self.max_atoms = max_atoms;
        self
    }

    /// Is every resource unlimited? (Lets wrappers skip bookkeeping.)
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_steps == u64::MAX && self.max_atoms == u64::MAX
    }

    /// Cooperative steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// One cooperative step: cheap enough for inner loops. Increments the
    /// shared step counter, checks the step limit, and probes the deadline
    /// every [`CLOCK_PERIOD`] steps (a coarse clock — cancellation latency
    /// is bounded by `CLOCK_PERIOD` steps, not by one).
    #[inline]
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        let steps = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if steps > self.max_steps {
            return Err(BudgetExceeded {
                resource: BudgetResource::Steps,
                steps,
            });
        }
        if steps % CLOCK_PERIOD == 1 {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Err(BudgetExceeded {
                        resource: BudgetResource::Deadline,
                        steps,
                    });
                }
            }
        }
        Ok(())
    }

    /// Gate on the size of an intermediate formula: errors when `atoms`
    /// exceeds the configured `max_atoms`. Called at elimination-round
    /// granularity (the formula walk is O(size), so not per step).
    pub fn check_atoms(&self, atoms: u64) -> Result<(), BudgetExceeded> {
        if atoms > self.max_atoms {
            return Err(BudgetExceeded {
                resource: BudgetResource::Atoms,
                steps: self.steps(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = EvalBudget::unlimited();
        for _ in 0..10_000 {
            assert!(b.check().is_ok());
        }
        assert!(b.check_atoms(u64::MAX - 1).is_ok());
        assert!(b.is_unlimited());
        assert_eq!(b.steps(), 10_000);
    }

    #[test]
    fn step_limit_trips_with_resource() {
        let b = EvalBudget::unlimited().with_max_steps(5);
        for _ in 0..5 {
            assert!(b.check().is_ok());
        }
        let err = b.check().unwrap_err();
        assert_eq!(err.resource, BudgetResource::Steps);
        assert_eq!(err.steps, 6);
        // Once tripped, it stays tripped.
        assert!(b.check().is_err());
    }

    #[test]
    fn deadline_trips_within_clock_period() {
        let b = EvalBudget::unlimited().with_deadline(Duration::from_millis(0));
        let mut tripped = None;
        for i in 0..(2 * CLOCK_PERIOD) {
            if b.check().is_err() {
                tripped = Some(i);
                break;
            }
        }
        let at = tripped.expect("an already-passed deadline must trip");
        assert!(at < CLOCK_PERIOD + 1, "tripped only after {at} steps");
    }

    #[test]
    fn atom_limit() {
        let b = EvalBudget::unlimited().with_max_atoms(100);
        assert!(b.check_atoms(100).is_ok());
        let err = b.check_atoms(101).unwrap_err();
        assert_eq!(err.resource, BudgetResource::Atoms);
    }

    #[test]
    fn shared_across_threads() {
        let b = EvalBudget::unlimited().with_max_steps(1000);
        let tripped = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..500 {
                        if b.check().is_err() {
                            tripped.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                });
            }
        });
        // 4 × 500 = 2000 > 1000: someone must observe the shared trip.
        assert!(tripped.load(Ordering::Relaxed) > 0);
    }
}
