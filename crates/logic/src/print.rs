//! Pretty-printing of formulas with human-readable variable names.
//!
//! The output re-parses to a semantically identical formula (round-trip
//! property tested in the crate's integration tests).

use crate::ast::{Formula, Rel};
use crate::varmap::VarMap;
use cqa_poly::MPoly;
use std::fmt::Write;

/// Renders a polynomial with names from `vars`.
pub fn display_poly(p: &MPoly, vars: &VarMap) -> String {
    if p.is_zero() {
        return "0".to_string();
    }
    let mut out = String::new();
    let mut first = true;
    let terms: Vec<_> = p.terms().collect();
    for (m, c) in terms.into_iter().rev() {
        if !first {
            out.push_str(if c.is_negative() { " - " } else { " + " });
        } else if c.is_negative() {
            out.push('-');
        }
        first = false;
        let a = c.abs();
        if m.is_empty() {
            let _ = write!(out, "{a}");
        } else {
            if !a.is_one() {
                let _ = write!(out, "{a}*");
            }
            let mut firstv = true;
            for &(v, e) in m {
                if !firstv {
                    out.push('*');
                }
                firstv = false;
                if e == 1 {
                    let _ = write!(out, "{}", vars.name(v));
                } else {
                    let _ = write!(out, "{}^{}", vars.name(v), e);
                }
            }
        }
    }
    out
}

fn rel_str(rel: Rel) -> &'static str {
    match rel {
        Rel::Eq => "=",
        Rel::Neq => "!=",
        Rel::Lt => "<",
        Rel::Le => "<=",
        Rel::Gt => ">",
        Rel::Ge => ">=",
    }
}

/// Renders a formula with names from `vars`. Fully parenthesized except for
/// atoms, so precedence is unambiguous and the result re-parses.
pub fn display_formula(f: &Formula, vars: &VarMap) -> String {
    let mut out = String::new();
    fmt_rec(f, vars, &mut out);
    out
}

fn fmt_rec(f: &Formula, vars: &VarMap, out: &mut String) {
    match f {
        Formula::True => out.push_str("true"),
        Formula::False => out.push_str("false"),
        Formula::Atom(a) => {
            let _ = write!(out, "{} {} 0", display_poly(&a.poly, vars), rel_str(a.rel));
        }
        Formula::Rel { name, args } => {
            let _ = write!(out, "{name}(");
            for (i, t) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&display_poly(t, vars));
            }
            out.push(')');
        }
        Formula::Not(g) => {
            out.push_str("!(");
            fmt_rec(g, vars, out);
            out.push(')');
        }
        Formula::And(fs) => nary(fs, " & ", "true", vars, out),
        Formula::Or(fs) => nary(fs, " | ", "false", vars, out),
        Formula::Exists(vs, g) => quant("exists", vs, g, vars, out),
        Formula::Forall(vs, g) => quant("forall", vs, g, vars, out),
        Formula::ExistsAdom(v, g) => {
            let _ = write!(out, "Eadom {}. (", vars.name(*v));
            fmt_rec(g, vars, out);
            out.push(')');
        }
        Formula::ForallAdom(v, g) => {
            let _ = write!(out, "Aadom {}. (", vars.name(*v));
            fmt_rec(g, vars, out);
            out.push(')');
        }
    }
}

fn nary(fs: &[Formula], sep: &str, empty: &str, vars: &VarMap, out: &mut String) {
    if fs.is_empty() {
        out.push_str(empty);
        return;
    }
    out.push('(');
    for (i, g) in fs.iter().enumerate() {
        if i > 0 {
            out.push_str(sep);
        }
        fmt_rec(g, vars, out);
    }
    out.push(')');
}

fn quant(kw: &str, vs: &[cqa_poly::Var], g: &Formula, vars: &VarMap, out: &mut String) {
    let _ = write!(out, "{kw} ");
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&vars.name(*v));
    }
    out.push_str(". (");
    fmt_rec(g, vars, out);
    out.push(')');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_formula, parse_formula_with};
    use cqa_arith::rat;
    use cqa_poly::Var;

    fn roundtrip(src: &str) {
        let (f, vars) = parse_formula(src).unwrap();
        let printed = display_formula(&f, &vars);
        let mut vars2 = vars.clone();
        let g = parse_formula_with(&printed, &mut vars2).unwrap();
        // Compare semantics on a grid of sample points.
        let fv: Vec<Var> = f.free_vars().into_iter().collect();
        let samples = [-2i64, -1, 0, 1, 2];
        let mut idx = vec![0usize; fv.len()];
        loop {
            let vals: Vec<_> = idx.iter().map(|&i| rat(samples[i], 2)).collect();
            let asg = |v: Var| {
                fv.iter()
                    .position(|&w| w == v)
                    .map(|i| vals[i].clone())
                    .unwrap_or_else(|| rat(0, 1))
            };
            if f.is_quantifier_free() && f.is_relation_free() {
                assert_eq!(f.eval(&asg, &[]), g.eval(&asg, &[]), "mismatch on {src}");
            } else {
                // Structural check only for quantified formulas.
                break;
            }
            // Advance the grid odometer.
            let mut k = 0;
            loop {
                if k == idx.len() {
                    return;
                }
                idx[k] += 1;
                if idx[k] < samples.len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }

    #[test]
    fn roundtrip_quantifier_free() {
        roundtrip("x < y");
        roundtrip("x + 2*y <= 1 & x >= 0");
        roundtrip("x*x - 2 = 0 | x < -1");
        roundtrip("!(x < 1) | 0.5 <= x");
        roundtrip("true & x != y");
    }

    #[test]
    fn printed_quantifiers_reparse() {
        let (f, vars) = parse_formula("exists y. x + y = 1 & y >= 0").unwrap();
        let s = display_formula(&f, &vars);
        let mut vars2 = vars.clone();
        let g = parse_formula_with(&s, &mut vars2).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn printed_relations_reparse() {
        let (f, vars) = parse_formula("U(x) & !U(y)").unwrap();
        let s = display_formula(&f, &vars);
        let mut vars2 = vars.clone();
        let g = parse_formula_with(&s, &mut vars2).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn poly_display_uses_names() {
        let (f, vars) = parse_formula("price * 2 + tax >= 10").unwrap();
        let s = display_formula(&f, &vars);
        assert!(s.contains("price"), "{s}");
        assert!(s.contains("tax"), "{s}");
    }
}
