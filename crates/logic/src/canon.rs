//! Canonical cache keys for formulas.
//!
//! A prepared-query cache (see the `cqa-engine` crate) wants one string per
//! *semantic* query so that trivially rearranged resubmissions of the same
//! query hit the same cache slot. [`Formula::canonical_key`] renders a
//! formula to a string that is invariant under
//!
//! * **commutativity** of `∧`/`∨` — operand keys are sorted before joining;
//! * **bound-variable renaming** — quantified variables are numbered
//!   de-Bruijn-style by binder depth, so `∃y. x < y` and `∃z. x < z` agree;
//! * **positive scaling of atoms** — each atom's polynomial is divided by
//!   its leading coefficient (flipping the relation when it is negative),
//!   so `2x < 2` and `x < 1` and `-x > -1` agree.
//!
//! Free variables keep their interned indices: they are the query's output
//! columns and *are* part of its identity. Callers whose output columns
//! have a session-independent order (e.g. name-sorted parameters) should
//! use [`Formula::canonical_key_for_params`], which renders those
//! variables positionally so keys agree across differently-interned
//! sessions. The key is sound for caching —
//! equal keys imply logically equivalent formulas — but deliberately not
//! complete (no normal-form explosion; `x < 1 ∧ x < 2` and `x < 1` key
//! differently). Callers that want more hits should run
//! `cqa_qe::simplify` first; the key of a simplified formula is stable
//! because simplification is idempotent.

use crate::{Formula, Rel};
use cqa_poly::{MPoly, Var};
use std::fmt::Write;

impl Formula {
    /// A canonical string key for memoizing per-formula artifacts
    /// (quantifier-elimination output, compiled kernels, analyzer
    /// verdicts). See the module docs for the invariances.
    pub fn canonical_key(&self) -> String {
        self.canonical_key_for_params(&[])
    }

    /// Like [`Formula::canonical_key`], but free variables listed in
    /// `params` are rendered by their *position* in that list (`p0`,
    /// `p1`, …) instead of their interned index. Two sessions that
    /// interned the same query's variables in different orders then
    /// produce the same key, as long as they pass the parameters in the
    /// same (e.g. name-sorted) order — this is what makes a cross-session
    /// query cache keyed on formulas possible.
    pub fn canonical_key_for_params(&self, params: &[Var]) -> String {
        let mut out = String::new();
        write_key(self, &mut Vec::new(), params, &mut out);
        out
    }
}

/// Renders `v` under the current binder stack: bound variables become
/// `b<depth>` (innermost binder = 0), parameters their position (`p<i>`),
/// remaining free variables keep their interned index.
fn var_key(v: Var, bound: &[Var], params: &[Var]) -> String {
    match bound.iter().rposition(|b| *b == v) {
        Some(pos) => format!("b{}", bound.len() - 1 - pos),
        None => match params.iter().position(|p| *p == v) {
            Some(pos) => format!("p{pos}"),
            None => format!("f{}", v.0),
        },
    }
}

fn rel_key(r: Rel) -> &'static str {
    match r {
        Rel::Eq => "=0",
        Rel::Neq => "!=0",
        Rel::Lt => "<0",
        Rel::Le => "<=0",
        Rel::Gt => ">0",
        Rel::Ge => ">=0",
    }
}

/// Renders a polynomial with binder-relative variable names; terms are
/// sorted as strings so the rendering does not depend on raw `Var` order.
fn poly_key(p: &MPoly, bound: &[Var], params: &[Var]) -> String {
    let mut terms: Vec<String> = p
        .terms()
        .map(|(mono, c)| {
            let mut t = format!("{c}");
            for (v, e) in mono {
                let _ = write!(t, "*{}^{e}", var_key(*v, bound, params));
            }
            t
        })
        .collect();
    terms.sort();
    terms.join("+")
}

fn write_key(f: &Formula, bound: &mut Vec<Var>, params: &[Var], out: &mut String) {
    match f {
        Formula::True => out.push('T'),
        Formula::False => out.push('F'),
        Formula::Atom(a) => {
            // Scale-normalize: divide by the leading coefficient so it
            // becomes +1, flipping the relation if it was negative. "Leading"
            // is the term whose *rendered* monomial is lexicographically
            // largest — raw term order depends on session-specific variable
            // indices, which would leak into the key.
            let lead = a
                .poly
                .terms()
                .map(|(mono, c)| {
                    let mut m = String::new();
                    for (v, e) in mono {
                        let _ = write!(m, "*{}^{e}", var_key(*v, bound, params));
                    }
                    (m, c.clone())
                })
                .max_by(|(m1, _), (m2, _)| m1.cmp(m2))
                .map(|(_, c)| c)
                .unwrap_or_else(cqa_arith::Rat::one);
            let p = a.poly.scale(&lead.recip());
            let rel = if lead.signum() < 0 {
                a.rel.flip()
            } else {
                a.rel
            };
            let _ = write!(out, "[{}{}]", poly_key(&p, bound, params), rel_key(rel));
        }
        Formula::Rel { name, args } => {
            let _ = write!(out, "R:{name}(");
            for (i, t) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&poly_key(t, bound, params));
            }
            out.push(')');
        }
        Formula::Not(g) => {
            out.push_str("!(");
            write_key(g, bound, params, out);
            out.push(')');
        }
        Formula::And(fs) | Formula::Or(fs) => {
            let mut keys: Vec<String> = fs
                .iter()
                .map(|g| {
                    let mut s = String::new();
                    write_key(g, bound, params, &mut s);
                    s
                })
                .collect();
            keys.sort();
            out.push(if matches!(f, Formula::And(_)) {
                '&'
            } else {
                '|'
            });
            out.push('(');
            out.push_str(&keys.join(","));
            out.push(')');
        }
        Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
            let _ = write!(
                out,
                "{}{}(",
                if matches!(f, Formula::Exists(..)) {
                    'E'
                } else {
                    'A'
                },
                vs.len()
            );
            let n = bound.len();
            bound.extend_from_slice(vs);
            write_key(g, bound, params, out);
            bound.truncate(n);
            out.push(')');
        }
        Formula::ExistsAdom(v, g) | Formula::ForallAdom(v, g) => {
            out.push(if matches!(f, Formula::ExistsAdom(..)) {
                'e'
            } else {
                'a'
            });
            out.push('(');
            bound.push(*v);
            write_key(g, bound, params, out);
            bound.pop();
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse_formula, Formula};

    fn key(src: &str) -> String {
        let (f, _) = parse_formula(src).unwrap();
        f.canonical_key()
    }

    #[test]
    fn alpha_equivalent_quantifiers_agree() {
        assert_eq!(key("exists y. x < y"), key("exists z. x < z"));
        assert_eq!(
            key("exists y. exists z. y < z"),
            key("exists u. exists v. u < v")
        );
        // Shadowing: the innermost binder wins on both sides.
        assert_eq!(
            key("exists y. exists y. y > 0"),
            key("exists a. exists b. b > 0")
        );
    }

    #[test]
    fn commutative_connectives_agree() {
        // Share one VarMap so `x`/`y` intern identically on both sides.
        let mut vars = crate::VarMap::new();
        let mut key = |src: &str| {
            crate::parse_formula_with(src, &mut vars)
                .unwrap()
                .canonical_key()
        };
        assert_eq!(key("x < 1 & y < 2"), key("y < 2 & x < 1"));
        assert_eq!(key("x < 1 | y < 2"), key("y < 2 | x < 1"));
        assert_ne!(key("x < 1 & y < 2"), key("x < 1 | y < 2"));
    }

    #[test]
    fn scaled_atoms_agree() {
        assert_eq!(key("2*x < 2"), key("x < 1"));
        assert_eq!(key("-x > -1"), key("x < 1"));
        assert_ne!(key("x < 1"), key("x < 2"));
    }

    #[test]
    fn free_variables_are_identity() {
        // Free variables are output columns: renaming them is a different
        // query, so the keys must differ (x is Var 0, y is Var 1; each
        // `key` call interns into a fresh VarMap, so `y` alone would also
        // be Var 0 — force it to index 1 by mentioning x first).
        assert_ne!(key("x < 0 & x < 1"), key("x < 0 & y < 1"));
        let (f, _) = parse_formula("x < 1").unwrap();
        let (g, _) = parse_formula("x < 1").unwrap();
        assert_eq!(f.canonical_key(), g.canonical_key());
        assert_eq!(Formula::True.canonical_key(), "T");
    }

    #[test]
    fn param_positions_make_keys_session_independent() {
        // Two sessions intern x/y in opposite orders; with name-sorted
        // parameter lists the keys must agree anyway.
        let mut a = crate::VarMap::new();
        let fa = crate::parse_formula_with("y <= x*x", &mut a).unwrap();
        let mut b = crate::VarMap::new();
        b.intern("x");
        let fb = crate::parse_formula_with("y <= x*x", &mut b).unwrap();
        assert_ne!(fa.canonical_key(), fb.canonical_key());
        let pa = [a.get("x").unwrap(), a.get("y").unwrap()];
        let pb = [b.get("x").unwrap(), b.get("y").unwrap()];
        assert_eq!(
            fa.canonical_key_for_params(&pa),
            fb.canonical_key_for_params(&pb)
        );
        // An asymmetric pair must still be distinguished.
        let fc = crate::parse_formula_with("x <= y*y", &mut a).unwrap();
        assert_ne!(
            fa.canonical_key_for_params(&pa),
            fc.canonical_key_for_params(&pa)
        );
    }

    #[test]
    fn bound_and_free_do_not_collide() {
        // `∃x. x < 1` (bound) vs `x < 1` (free) must not share a key.
        assert_ne!(key("exists x. x < 1"), key("x < 1"));
    }
}
