//! Normal forms: negation normal form, prenex normal form, and disjunctive
//! normal form of quantifier-free formulas.

use crate::ast::Formula;
use cqa_poly::{MPoly, Var};

/// Rewrites into negation normal form: negations occur only directly on
/// schema-relation atoms (sign-condition atoms absorb their negation by
/// flipping the relation).
pub fn nnf(f: &Formula) -> Formula {
    match f {
        Formula::Not(g) => nnf_neg(g),
        Formula::And(fs) => fs.iter().map(nnf).fold(Formula::True, Formula::and),
        Formula::Or(fs) => fs.iter().map(nnf).fold(Formula::False, Formula::or),
        Formula::Exists(vs, g) => Formula::exists(vs.clone(), nnf(g)),
        Formula::Forall(vs, g) => Formula::forall(vs.clone(), nnf(g)),
        Formula::ExistsAdom(v, g) => Formula::ExistsAdom(*v, Box::new(nnf(g))),
        Formula::ForallAdom(v, g) => Formula::ForallAdom(*v, Box::new(nnf(g))),
        _ => f.clone(),
    }
}

fn nnf_neg(f: &Formula) -> Formula {
    match f {
        Formula::True => Formula::False,
        Formula::False => Formula::True,
        Formula::Atom(_) => f.clone().negate(),
        Formula::Rel { .. } => Formula::Not(Box::new(f.clone())),
        Formula::Not(g) => nnf(g),
        Formula::And(fs) => fs.iter().map(nnf_neg).fold(Formula::False, Formula::or),
        Formula::Or(fs) => fs.iter().map(nnf_neg).fold(Formula::True, Formula::and),
        Formula::Exists(vs, g) => Formula::forall(vs.clone(), nnf_neg(g)),
        Formula::Forall(vs, g) => Formula::exists(vs.clone(), nnf_neg(g)),
        Formula::ExistsAdom(v, g) => Formula::ForallAdom(*v, Box::new(nnf_neg(g))),
        Formula::ForallAdom(v, g) => Formula::ExistsAdom(*v, Box::new(nnf_neg(g))),
    }
}

/// One block of like quantifiers in a prenex prefix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrenexBlock {
    /// `true` for ∃, `false` for ∀.
    pub exists: bool,
    /// The block's variables.
    pub vars: Vec<Var>,
}

/// Converts to prenex normal form. Returns the quantifier prefix (outermost
/// first) and the quantifier-free matrix. Bound variables are renamed apart
/// so the prefix binds distinct variables and captures nothing.
///
/// Active-domain quantifiers are not supported here (they are evaluated
/// directly over finite instances); the function panics if one occurs.
pub fn prenex(f: &Formula) -> (Vec<PrenexBlock>, Formula) {
    let f = nnf(f);
    let mut next = f.fresh_var().0;
    let (prefix, matrix) = prenex_rec(&f, &mut next);
    (merge_blocks(prefix), matrix)
}

fn merge_blocks(blocks: Vec<PrenexBlock>) -> Vec<PrenexBlock> {
    let mut out: Vec<PrenexBlock> = Vec::new();
    for b in blocks {
        if b.vars.is_empty() {
            continue;
        }
        match out.last_mut() {
            Some(last) if last.exists == b.exists => last.vars.extend(b.vars),
            _ => out.push(b),
        }
    }
    out
}

fn prenex_rec(f: &Formula, next: &mut u32) -> (Vec<PrenexBlock>, Formula) {
    match f {
        Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
            let exists = matches!(f, Formula::Exists(..));
            // Rename each bound variable to a globally fresh one.
            let mut body = (**g).clone();
            let mut fresh = Vec::with_capacity(vs.len());
            for v in vs {
                let w = Var(*next);
                *next += 1;
                body = body.subst_poly(*v, &MPoly::var(w));
                fresh.push(w);
            }
            let (mut inner, matrix) = prenex_rec(&body, next);
            inner.insert(
                0,
                PrenexBlock {
                    exists,
                    vars: fresh,
                },
            );
            (inner, matrix)
        }
        Formula::And(fs) | Formula::Or(fs) => {
            let is_and = matches!(f, Formula::And(_));
            let mut prefix = Vec::new();
            let mut parts = Vec::with_capacity(fs.len());
            for g in fs {
                let (p, m) = prenex_rec(g, next);
                prefix.extend(p);
                parts.push(m);
            }
            let matrix = if is_and {
                parts.into_iter().fold(Formula::True, Formula::and)
            } else {
                parts.into_iter().fold(Formula::False, Formula::or)
            };
            (prefix, matrix)
        }
        Formula::Not(g) => {
            // NNF input: negation only wraps relation atoms (quantifier-free).
            debug_assert!(g.is_quantifier_free());
            (Vec::new(), f.clone())
        }
        Formula::ExistsAdom(..) | Formula::ForallAdom(..) => {
            panic!("prenex: active-domain quantifiers must be evaluated, not prenexed")
        }
        _ => (Vec::new(), f.clone()),
    }
}

/// Converts a quantifier-free formula to disjunctive normal form: a list of
/// clauses, each a conjunction of literals (sign-condition atoms, relation
/// atoms, or negated relation atoms). Trivially false clauses are dropped;
/// an empty clause list means `⊥`, and a clause with no literals means `⊤`.
///
/// # Panics
/// Panics if the formula contains a quantifier.
pub fn dnf(f: &Formula) -> Vec<Vec<Formula>> {
    assert!(
        f.is_quantifier_free(),
        "dnf requires a quantifier-free formula"
    );
    let f = nnf(f);
    dnf_rec(&f)
}

fn dnf_rec(f: &Formula) -> Vec<Vec<Formula>> {
    match f {
        Formula::True => vec![Vec::new()],
        Formula::False => Vec::new(),
        Formula::Atom(_) | Formula::Rel { .. } | Formula::Not(_) => vec![vec![f.clone()]],
        Formula::Or(fs) => fs.iter().flat_map(dnf_rec).collect(),
        Formula::And(fs) => {
            let mut acc: Vec<Vec<Formula>> = vec![Vec::new()];
            for g in fs {
                let gd = dnf_rec(g);
                let mut next = Vec::with_capacity(acc.len() * gd.len());
                for clause in &acc {
                    for gclause in &gd {
                        let mut merged = clause.clone();
                        merged.extend(gclause.iter().cloned());
                        next.push(merged);
                    }
                }
                acc = next;
            }
            acc
        }
        _ => unreachable!("quantifier under dnf"),
    }
}

/// Rebuilds a formula from DNF clauses.
pub fn from_dnf(clauses: &[Vec<Formula>]) -> Formula {
    clauses
        .iter()
        .map(|c| c.iter().cloned().fold(Formula::True, Formula::and))
        .fold(Formula::False, Formula::or)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Formula as F, Rel};

    fn x() -> MPoly {
        MPoly::var(Var(0))
    }
    fn y() -> MPoly {
        MPoly::var(Var(1))
    }

    #[test]
    fn nnf_pushes_negation() {
        // ¬(x < y ∨ x = y)  ⇒  x ≥ y ∧ x ≠ y
        let f = F::Not(Box::new(F::lt(x(), y()).or(F::eq(x(), y()))));
        let g = nnf(&f);
        match g {
            F::And(parts) => {
                assert_eq!(parts.len(), 2);
                match (&parts[0], &parts[1]) {
                    (F::Atom(a), F::Atom(b)) => {
                        assert_eq!(a.rel, Rel::Ge);
                        assert_eq!(b.rel, Rel::Neq);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn nnf_swaps_quantifiers() {
        // ¬∃x. x < y  ⇒  ∀x. x ≥ y
        let f = F::Not(Box::new(F::exists(vec![Var(0)], F::lt(x(), y()))));
        match nnf(&f) {
            F::Forall(vs, body) => {
                assert_eq!(vs, vec![Var(0)]);
                assert!(matches!(*body, F::Atom(ref a) if a.rel == Rel::Ge));
            }
            other => panic!("expected Forall, got {other:?}"),
        }
    }

    #[test]
    fn nnf_keeps_relation_negation() {
        let f = F::Not(Box::new(F::Rel {
            name: "S".into(),
            args: vec![x()],
        }));
        assert!(matches!(nnf(&f), F::Not(_)));
    }

    #[test]
    fn prenex_renames_apart() {
        // (∃x. x < y) ∧ (∃x. y < x): the two bound x's must become distinct.
        let left = F::exists(vec![Var(0)], F::lt(x(), y()));
        let right = F::exists(vec![Var(0)], F::lt(y(), x()));
        let (prefix, matrix) = prenex(&left.and(right));
        let bound: Vec<Var> = prefix.iter().flat_map(|b| b.vars.clone()).collect();
        assert_eq!(bound.len(), 2);
        assert_ne!(bound[0], bound[1]);
        assert!(matrix.is_quantifier_free());
        // y (Var 1) must remain free in the matrix.
        assert!(matrix.free_vars().contains(&Var(1)));
        assert!(!matrix.free_vars().contains(&Var(0)));
    }

    #[test]
    fn prenex_orders_alternation() {
        // ∀u.(u ≤ y) ∨ ∃v.(v < y) — prefix has a ∀ block and an ∃ block.
        let f = F::forall(vec![Var(2)], F::le(MPoly::var(Var(2)), y()))
            .or(F::exists(vec![Var(3)], F::lt(MPoly::var(Var(3)), y())));
        let (prefix, _) = prenex(&f);
        assert_eq!(prefix.len(), 2);
        assert_ne!(prefix[0].exists, prefix[1].exists);
    }

    #[test]
    fn dnf_distributes() {
        // (a ∨ b) ∧ c → [a,c], [b,c]
        let a = F::lt(x(), y());
        let b = F::eq(x(), y());
        let c = F::lt(y(), MPoly::one());
        let f = a.clone().or(b.clone()).and(c.clone());
        let clauses = dnf(&f);
        assert_eq!(clauses.len(), 2);
        assert_eq!(clauses[0], vec![a, c.clone()]);
        assert_eq!(clauses[1], vec![b, c]);
    }

    #[test]
    fn dnf_constants() {
        assert_eq!(dnf(&F::True), vec![Vec::<F>::new()]);
        assert!(dnf(&F::False).is_empty());
        let f = F::lt(x(), y()).and(F::False);
        assert!(dnf(&f).is_empty());
    }

    #[test]
    fn from_dnf_roundtrip_semantics() {
        let a = F::lt(x(), y());
        let b = F::eq(x(), y());
        let f = a.clone().or(b.clone());
        let back = from_dnf(&dnf(&f));
        // Semantically equal on sample points.
        let pts = [(0i64, 1i64), (1, 0), (1, 1), (-3, 2)];
        for (xv, yv) in pts {
            let asg = move |v: Var| cqa_arith::rat(if v == Var(0) { xv } else { yv }, 1);
            assert_eq!(f.eval(&asg, &[]), back.eval(&asg, &[]));
        }
    }

    #[test]
    #[should_panic(expected = "quantifier-free")]
    fn dnf_rejects_quantifiers() {
        let f = F::exists(vec![Var(0)], F::lt(x(), y()));
        let _ = dnf(&f);
    }
}
