//! First-order formulas over constraint signatures.
//!
//! This crate implements the syntactic side of the constraint query
//! languages of Section 2 of Benedikt & Libkin (PODS 1999):
//!
//! * [`Formula`] — first-order formulas `FO(SC, Ω)` built from polynomial
//!   sign-condition atoms, schema-relation atoms, boolean connectives, and
//!   both *natural* (real) and *active-domain* quantifiers.
//! * [`Atom`]/[`Rel`] — atomic constraints `p(x⃗) ⋈ 0` with `⋈` one of
//!   `=, ≠, <, ≤, >, ≥`; dense-order, linear (FO+LIN) and polynomial
//!   (FO+POLY) constraint classes are distinguished by [`Formula::class`].
//! * Normal forms: negation normal form, prenex normal form, and disjunctive
//!   normal form of quantifier-free formulas (the workhorse of
//!   Fourier–Motzkin elimination in `cqa-qe`).
//! * A text [`parser`](parse_formula) and round-trippable pretty-printer, so
//!   examples and tests can write formulas the way the paper does.
//! * [`CompiledMatrix`] — a compiled evaluation kernel for quantifier-free
//!   matrices: slot-resolved variables, arena atoms, and a guarded
//!   `f64` fast path with exact rational fallback, bit-identical to
//!   [`Formula::eval`] but without the per-point interpretive overhead.
//!
//! Variables are interned [`Var`](cqa_poly::Var) indices; [`VarMap`] keeps
//! the human names.

#![forbid(unsafe_code)]

mod ast;
pub mod budget;
mod canon;
mod compile;
pub mod ir;
mod norm;
mod parser;
mod print;
mod span;
mod varmap;

pub use ast::{Atom, ConstraintClass, Formula, Rel};
pub use compile::{
    rat_to_f64_err, Batch, BatchResult, BatchScratch, CompileError, CompiledMatrix, LaneMask,
    LaneStats, SlotMap, BATCH_LANES,
};
pub use ir::{Arena, ArenaStats, FormulaId, TermId};
pub use norm::{dnf, from_dnf, nnf, prenex, PrenexBlock};
pub use parser::{
    parse_formula, parse_formula_spanned, parse_formula_with, parse_term_with, ParseError,
};
pub use print::display_formula;
pub use span::{BoundVar, Span, SpannedFormula, SpannedNode};
pub use varmap::VarMap;
