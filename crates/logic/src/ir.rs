//! Hash-consed formula IR: an interning arena for [`Formula`] dags.
//!
//! The boxed [`Formula`] tree is the right interchange type — easy to build,
//! pattern-match, and print — but it is the wrong *working* representation
//! for quantifier elimination: FM/Hörmander output is exponentially large
//! precisely because it repeats the same subformulas over and over
//! (Lemma 1's blow-up is duplication, not novelty), and a tree stores every
//! copy. Following the straight-line/dag discipline of Giusti–Heintz, this
//! module interns formulas into an [`Arena`]:
//!
//! * **Hash-consing** — structurally equal nodes get the *same*
//!   [`FormulaId`]; structural equality becomes a pointer-width integer
//!   compare, and memo tables key on ids instead of O(size) trees.
//! * **Cached metadata** — free variables, atom/quantifier counts, depth,
//!   max degree, and the constraint-class bit are computed once at intern
//!   time (O(1) amortized per node) and shared by every consumer
//!   (simplifier, analyzer, compiler) instead of re-walking the tree.
//! * **128-bit structural hash** — a deterministic FNV-1a-128 digest of the
//!   node's exact structure, cheap to combine bottom-up.
//! * **Canonical hash** — [`Arena::canonical_hash_for_params`] mirrors the
//!   invariances of [`Formula::canonical_key_for_params`] (commutativity,
//!   bound-variable de-Bruijn numbering, positive atom scaling, positional
//!   parameters) without rendering a string, so the engine's warm EXEC path
//!   computes a cache key with zero allocation.
//!
//! The bridge to the boxed world is lossless: `extern_formula(intern(f))`
//! reconstructs `f` exactly (no normalization happens on intern), and
//! `intern(extern_formula(id)) == id` because interning is structural.

use crate::ast::{is_order_atom, Atom, ConstraintClass, Formula, Rel};
use cqa_arith::Rat;
use cqa_poly::{MPoly, Var};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Id of an interned polynomial term in an [`Arena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

/// Id of an interned formula node in an [`Arena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FormulaId(pub u32);

/// Id of an interned relation name in an [`Arena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(pub u32);

/// One formula node; children are ids, so structurally equal subtrees are
/// physically shared. Mirrors [`Formula`] constructor-for-constructor.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Node {
    /// ⊤.
    True,
    /// ⊥.
    False,
    /// Sign condition `p ⋈ 0`.
    Atom { poly: TermId, rel: Rel },
    /// Schema-relation atom `R(t₁, …, tₖ)`.
    Rel { name: NameId, args: Vec<TermId> },
    /// Negation.
    Not(FormulaId),
    /// n-ary conjunction (empty = ⊤).
    And(Vec<FormulaId>),
    /// n-ary disjunction (empty = ⊥).
    Or(Vec<FormulaId>),
    /// Natural (real) existential block.
    Exists(Vec<Var>, FormulaId),
    /// Natural (real) universal block.
    Forall(Vec<Var>, FormulaId),
    /// Active-domain existential.
    ExistsAdom(Var, FormulaId),
    /// Active-domain universal.
    ForallAdom(Var, FormulaId),
}

/// Metadata cached per interned node, computed once at intern time.
///
/// The counts use *tree* semantics (a shared subnode counts once per
/// occurrence, saturating at `u64::MAX`) so they agree with the boxed
/// walkers ([`Formula::atom_count`], [`Formula::quantifier_count`]) that the
/// analyzer's reports were calibrated against — a dag can be exponentially
/// smaller than the tree it denotes, which is the whole point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeMeta {
    /// 128-bit structural hash (exact structure, raw variable indices).
    pub hash: u128,
    /// Free variables, sorted ascending, deduplicated.
    pub free_vars: Vec<Var>,
    /// Tree depth (leaves = 1).
    pub depth: u32,
    /// Sign-condition atoms in the denoted tree.
    pub sign_atoms: u64,
    /// Relation-atom occurrences in the denoted tree.
    pub rel_atoms: u64,
    /// Quantified variables (natural + active-domain, with multiplicity).
    pub quantifiers: u64,
    /// Active-domain quantifier nodes among them.
    pub adom_quantifiers: u64,
    /// Maximum total degree over atom polynomials and relation arguments.
    pub max_degree: u32,
    /// Constraint class of the sign-condition atoms (relations don't count).
    pub class: ConstraintClass,
    /// No quantifier of either kind below this node.
    pub quantifier_free: bool,
    /// Distinct relation names mentioned, sorted by id.
    pub relations: Vec<NameId>,
}

impl NodeMeta {
    /// Atoms of either kind — matches [`Formula::atom_count`].
    pub fn atom_count(&self) -> u64 {
        self.sign_atoms.saturating_add(self.rel_atoms)
    }
}

/// Metadata cached per interned term.
#[derive(Clone, Debug, PartialEq, Eq)]
struct TermMeta {
    /// 128-bit structural hash of the polynomial.
    hash: u128,
    /// Variables, sorted ascending.
    vars: Vec<Var>,
    /// Total degree (0 for constants and the zero polynomial).
    total_degree: u32,
    /// Constraint class this term would induce as a sign-condition atom.
    class_if_atom: ConstraintClass,
}

/// Occupancy and dedup counters for an [`Arena`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Distinct formula nodes stored.
    pub nodes: u64,
    /// Distinct polynomial terms stored.
    pub terms: u64,
    /// Node intern requests served (hits + misses).
    pub intern_calls: u64,
    /// Term intern requests served (hits + misses).
    pub term_intern_calls: u64,
}

impl ArenaStats {
    /// Intern calls per stored node — `> 1` means hash-consing found sharing.
    pub fn dedup_ratio(&self) -> f64 {
        if self.nodes == 0 {
            1.0
        } else {
            self.intern_calls as f64 / self.nodes as f64
        }
    }
}

/// The interning arena. See the module docs.
#[derive(Debug, Default)]
pub struct Arena {
    terms: Vec<MPoly>,
    term_meta: Vec<TermMeta>,
    term_ids: HashMap<MPoly, TermId>,
    nodes: Vec<Node>,
    meta: Vec<NodeMeta>,
    node_ids: HashMap<Node, FormulaId>,
    rel_names: Vec<String>,
    name_ids: HashMap<String, NameId>,
    intern_calls: u64,
    term_intern_calls: u64,
}

impl Arena {
    /// An empty arena.
    pub fn new() -> Arena {
        Arena::default()
    }

    /// Interns a boxed formula tree, bottom-up. Structurally equal subtrees
    /// collapse to one id; nothing is normalized, so
    /// `extern_formula(intern(f))` reproduces `f` exactly.
    pub fn intern(&mut self, f: &Formula) -> FormulaId {
        match f {
            Formula::True => self.intern_node(Node::True),
            Formula::False => self.intern_node(Node::False),
            Formula::Atom(a) => {
                let poly = self.intern_term(&a.poly);
                self.intern_node(Node::Atom { poly, rel: a.rel })
            }
            Formula::Rel { name, args } => {
                let name = self.intern_name(name);
                let args = args.iter().map(|t| self.intern_term(t)).collect();
                self.intern_node(Node::Rel { name, args })
            }
            Formula::Not(g) => {
                let g = self.intern(g);
                self.intern_node(Node::Not(g))
            }
            Formula::And(fs) => {
                let fs = fs.iter().map(|g| self.intern(g)).collect();
                self.intern_node(Node::And(fs))
            }
            Formula::Or(fs) => {
                let fs = fs.iter().map(|g| self.intern(g)).collect();
                self.intern_node(Node::Or(fs))
            }
            Formula::Exists(vs, g) => {
                let g = self.intern(g);
                self.intern_node(Node::Exists(vs.clone(), g))
            }
            Formula::Forall(vs, g) => {
                let g = self.intern(g);
                self.intern_node(Node::Forall(vs.clone(), g))
            }
            Formula::ExistsAdom(v, g) => {
                let g = self.intern(g);
                self.intern_node(Node::ExistsAdom(*v, g))
            }
            Formula::ForallAdom(v, g) => {
                let g = self.intern(g);
                self.intern_node(Node::ForallAdom(*v, g))
            }
        }
    }

    /// Interns one node whose children are already interned.
    pub fn intern_node(&mut self, node: Node) -> FormulaId {
        self.intern_calls += 1;
        if let Some(&id) = self.node_ids.get(&node) {
            return id;
        }
        let meta = self.compute_meta(&node);
        let id = FormulaId(u32::try_from(self.nodes.len()).expect("arena overflow"));
        self.node_ids.insert(node.clone(), id);
        self.nodes.push(node);
        self.meta.push(meta);
        id
    }

    /// Interns one polynomial term.
    pub fn intern_term(&mut self, p: &MPoly) -> TermId {
        self.term_intern_calls += 1;
        if let Some(&id) = self.term_ids.get(p) {
            return id;
        }
        let mut h = Fnv128::new();
        p.hash(&mut h);
        let meta = TermMeta {
            hash: h.finish128(),
            vars: p.vars().into_iter().collect(),
            total_degree: p.total_degree().unwrap_or(0),
            class_if_atom: if !p.is_affine() {
                ConstraintClass::Polynomial
            } else if is_order_atom(p) {
                ConstraintClass::DenseOrder
            } else {
                ConstraintClass::Linear
            },
        };
        let id = TermId(u32::try_from(self.terms.len()).expect("arena overflow"));
        self.term_ids.insert(p.clone(), id);
        self.terms.push(p.clone());
        self.term_meta.push(meta);
        id
    }

    /// Interns a relation name.
    pub fn intern_name(&mut self, name: &str) -> NameId {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = NameId(u32::try_from(self.rel_names.len()).expect("arena overflow"));
        self.name_ids.insert(name.to_string(), id);
        self.rel_names.push(name.to_string());
        id
    }

    /// Reconstructs the exact boxed tree denoted by `id`.
    pub fn extern_formula(&self, id: FormulaId) -> Formula {
        match self.node(id) {
            Node::True => Formula::True,
            Node::False => Formula::False,
            Node::Atom { poly, rel } => Formula::Atom(Atom {
                poly: self.term(*poly).clone(),
                rel: *rel,
            }),
            Node::Rel { name, args } => Formula::Rel {
                name: self.rel_name(*name).to_string(),
                args: args.iter().map(|&t| self.term(t).clone()).collect(),
            },
            Node::Not(g) => Formula::Not(Box::new(self.extern_formula(*g))),
            Node::And(fs) => Formula::And(fs.iter().map(|&g| self.extern_formula(g)).collect()),
            Node::Or(fs) => Formula::Or(fs.iter().map(|&g| self.extern_formula(g)).collect()),
            Node::Exists(vs, g) => Formula::Exists(vs.clone(), Box::new(self.extern_formula(*g))),
            Node::Forall(vs, g) => Formula::Forall(vs.clone(), Box::new(self.extern_formula(*g))),
            Node::ExistsAdom(v, g) => Formula::ExistsAdom(*v, Box::new(self.extern_formula(*g))),
            Node::ForallAdom(v, g) => Formula::ForallAdom(*v, Box::new(self.extern_formula(*g))),
        }
    }

    /// The node behind an id.
    pub fn node(&self, id: FormulaId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// The cached metadata behind an id.
    pub fn meta(&self, id: FormulaId) -> &NodeMeta {
        &self.meta[id.0 as usize]
    }

    /// The polynomial behind a term id.
    pub fn term(&self, id: TermId) -> &MPoly {
        &self.terms[id.0 as usize]
    }

    /// The relation name behind a name id.
    pub fn rel_name(&self, id: NameId) -> &str {
        &self.rel_names[id.0 as usize]
    }

    /// The 128-bit structural hash of `id` (exact structure, raw variable
    /// indices — use [`Arena::canonical_hash_for_params`] for cache keys).
    pub fn structural_hash(&self, id: FormulaId) -> u128 {
        self.meta(id).hash
    }

    /// Occupancy and dedup counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            nodes: self.nodes.len() as u64,
            terms: self.terms.len() as u64,
            intern_calls: self.intern_calls,
            term_intern_calls: self.term_intern_calls,
        }
    }

    fn compute_meta(&self, node: &Node) -> NodeMeta {
        let mut h = Fnv128::new();
        match node {
            Node::True => {
                h.write_u8(TAG_TRUE);
                NodeMeta {
                    hash: h.finish128(),
                    ..leaf_meta()
                }
            }
            Node::False => {
                h.write_u8(TAG_FALSE);
                NodeMeta {
                    hash: h.finish128(),
                    ..leaf_meta()
                }
            }
            Node::Atom { poly, rel } => {
                let tm = &self.term_meta[poly.0 as usize];
                h.write_u8(TAG_ATOM);
                h.write_u8(*rel as u8);
                h.write_u128(tm.hash);
                NodeMeta {
                    hash: h.finish128(),
                    free_vars: tm.vars.clone(),
                    sign_atoms: 1,
                    max_degree: tm.total_degree,
                    class: tm.class_if_atom,
                    ..leaf_meta()
                }
            }
            Node::Rel { name, args } => {
                h.write_u8(TAG_REL);
                // Hash the name *string*, not the arena-local id, so
                // structural hashes agree across arenas.
                let s = self.rel_name(*name);
                h.write_usize(s.len());
                h.write(s.as_bytes());
                h.write_usize(args.len());
                let mut free: Vec<Var> = Vec::new();
                let mut max_degree = 0;
                for &t in args {
                    let tm = &self.term_meta[t.0 as usize];
                    h.write_u128(tm.hash);
                    free = merge_vars(&free, &tm.vars);
                    max_degree = max_degree.max(tm.total_degree);
                }
                NodeMeta {
                    hash: h.finish128(),
                    free_vars: free,
                    rel_atoms: 1,
                    max_degree,
                    relations: vec![*name],
                    ..leaf_meta()
                }
            }
            Node::Not(g) => {
                let cm = self.meta(*g);
                h.write_u8(TAG_NOT);
                h.write_u128(cm.hash);
                NodeMeta {
                    hash: h.finish128(),
                    free_vars: cm.free_vars.clone(),
                    depth: cm.depth + 1,
                    relations: cm.relations.clone(),
                    ..up(cm)
                }
            }
            Node::And(fs) | Node::Or(fs) => {
                h.write_u8(if matches!(node, Node::And(_)) {
                    TAG_AND
                } else {
                    TAG_OR
                });
                h.write_usize(fs.len());
                let mut out = leaf_meta();
                for &g in fs {
                    let cm = self.meta(g);
                    h.write_u128(cm.hash);
                    out.free_vars = merge_vars(&out.free_vars, &cm.free_vars);
                    out.depth = out.depth.max(cm.depth);
                    out.sign_atoms = out.sign_atoms.saturating_add(cm.sign_atoms);
                    out.rel_atoms = out.rel_atoms.saturating_add(cm.rel_atoms);
                    out.quantifiers = out.quantifiers.saturating_add(cm.quantifiers);
                    out.adom_quantifiers = out.adom_quantifiers.saturating_add(cm.adom_quantifiers);
                    out.max_degree = out.max_degree.max(cm.max_degree);
                    out.class = out.class.max(cm.class);
                    out.quantifier_free &= cm.quantifier_free;
                    out.relations = merge_names(&out.relations, &cm.relations);
                }
                out.depth += 1;
                out.hash = h.finish128();
                out
            }
            Node::Exists(vs, g) | Node::Forall(vs, g) => {
                let cm = self.meta(*g);
                h.write_u8(if matches!(node, Node::Exists(..)) {
                    TAG_EXISTS
                } else {
                    TAG_FORALL
                });
                h.write_usize(vs.len());
                for v in vs {
                    h.write_u32(v.0);
                }
                h.write_u128(cm.hash);
                let free = cm
                    .free_vars
                    .iter()
                    .filter(|v| !vs.contains(v))
                    .copied()
                    .collect();
                NodeMeta {
                    hash: h.finish128(),
                    free_vars: free,
                    depth: cm.depth + 1,
                    quantifiers: cm.quantifiers.saturating_add(vs.len() as u64),
                    quantifier_free: false,
                    relations: cm.relations.clone(),
                    ..up(cm)
                }
            }
            Node::ExistsAdom(v, g) | Node::ForallAdom(v, g) => {
                let cm = self.meta(*g);
                h.write_u8(if matches!(node, Node::ExistsAdom(..)) {
                    TAG_EADOM
                } else {
                    TAG_AADOM
                });
                h.write_u32(v.0);
                h.write_u128(cm.hash);
                let free = cm.free_vars.iter().filter(|w| *w != v).copied().collect();
                NodeMeta {
                    hash: h.finish128(),
                    free_vars: free,
                    depth: cm.depth + 1,
                    quantifiers: cm.quantifiers.saturating_add(1),
                    adom_quantifiers: cm.adom_quantifiers.saturating_add(1),
                    quantifier_free: false,
                    relations: cm.relations.clone(),
                    ..up(cm)
                }
            }
        }
    }

    /// A key for memoizing per-formula artifacts, mirroring the invariances
    /// of [`Formula::canonical_key_for_params`] — commutativity of `∧`/`∨`
    /// (child digests are sorted), de-Bruijn numbering of bound variables,
    /// positive scaling of atoms, positional parameters — as a 128-bit
    /// digest instead of a rendered string. No allocation proportional to
    /// formula size; the walk is O(dag) per call.
    ///
    /// Equal digests imply logically equivalent formulas up to the
    /// negligible 2⁻¹²⁸ collision probability of the digest; the *string*
    /// key and this digest are separate key namespaces (see DESIGN.md §9).
    pub fn canonical_hash_for_params(&self, id: FormulaId, params: &[Var]) -> u128 {
        self.canon_hash(id, &mut Vec::new(), params)
    }

    /// The subplan memo key of a subformula: its canonical hash taken
    /// positionally over its own free variables in ascending `Var` order
    /// (the order [`NodeMeta::free_vars`] already stores), plus that
    /// parameter list. Two subformulas agreeing on this hash and on the
    /// parameter *count* are logically equivalent as predicates over their
    /// positional parameters (up to the digest's 2⁻¹²⁸ collision), so a
    /// quantifier-elimination result computed for one can be renamed
    /// positionally onto the other — the contract behind the engine's
    /// cross-query subplan sharing (see `cqa_qe::plan`).
    pub fn subplan_hash(&self, id: FormulaId) -> (u128, Vec<Var>) {
        let params = self.meta(id).free_vars.clone();
        (self.canonical_hash_for_params(id, &params), params)
    }

    fn canon_hash(&self, id: FormulaId, bound: &mut Vec<Var>, params: &[Var]) -> u128 {
        let mut h = Fnv128::new();
        match self.node(id) {
            Node::True => h.write_u8(TAG_TRUE),
            Node::False => h.write_u8(TAG_FALSE),
            Node::Atom { poly, rel } => {
                // Scale-normalize exactly like the string key: divide by the
                // coefficient of the canonically largest monomial, flipping
                // the relation when it is negative. The terms are sorted
                // ascending, so the lead is the last coefficient.
                let ts = self.canon_terms(*poly, bound, params);
                let lead = ts.last().map(|(_, c)| *c);
                let rel = match lead {
                    Some(c) if c.signum() < 0 => rel.flip(),
                    _ => *rel,
                };
                h.write_u8(TAG_ATOM);
                h.write_u8(rel as u8);
                match lead {
                    // Already normalized: hash coefficients as they are,
                    // no rational arithmetic at all.
                    None => write_canon_terms(&mut h, &ts),
                    Some(c) if c.is_one() => write_canon_terms(&mut h, &ts),
                    Some(c) => {
                        let inv = c.recip();
                        h.write_usize(ts.len());
                        for (m, c) in &ts {
                            write_canon_monomial(&mut h, m);
                            (*c * &inv).hash(&mut h);
                        }
                    }
                }
            }
            Node::Rel { name, args } => {
                h.write_u8(TAG_REL);
                let s = self.rel_name(*name);
                h.write_usize(s.len());
                h.write(s.as_bytes());
                h.write_usize(args.len());
                for &t in args {
                    let ts = self.canon_terms(t, bound, params);
                    write_canon_terms(&mut h, &ts);
                }
            }
            Node::Not(g) => {
                h.write_u8(TAG_NOT);
                h.write_u128(self.canon_hash(*g, bound, params));
            }
            Node::And(fs) | Node::Or(fs) => {
                h.write_u8(if matches!(self.node(id), Node::And(_)) {
                    TAG_AND
                } else {
                    TAG_OR
                });
                h.write_usize(fs.len());
                let mut hs: Vec<u128> = fs
                    .iter()
                    .map(|&g| self.canon_hash(g, bound, params))
                    .collect();
                hs.sort_unstable();
                for x in hs {
                    h.write_u128(x);
                }
            }
            Node::Exists(vs, g) | Node::Forall(vs, g) => {
                h.write_u8(if matches!(self.node(id), Node::Exists(..)) {
                    TAG_EXISTS
                } else {
                    TAG_FORALL
                });
                h.write_usize(vs.len());
                let n = bound.len();
                bound.extend_from_slice(vs);
                h.write_u128(self.canon_hash(*g, bound, params));
                bound.truncate(n);
            }
            Node::ExistsAdom(v, g) | Node::ForallAdom(v, g) => {
                h.write_u8(if matches!(self.node(id), Node::ExistsAdom(..)) {
                    TAG_EADOM
                } else {
                    TAG_AADOM
                });
                bound.push(*v);
                h.write_u128(self.canon_hash(*g, bound, params));
                bound.pop();
            }
        }
        h.finish128()
    }

    /// The term's monomials with binder-relative variable tokens, sorted by
    /// canonical monomial (distinct raw variables map to distinct tokens, so
    /// canonical monomials stay distinct and the sort is total).
    /// Coefficients are borrowed — hashing a key must not clone rationals.
    fn canon_terms<'a>(
        &'a self,
        t: TermId,
        bound: &[Var],
        params: &[Var],
    ) -> Vec<(Vec<(CanonVar, u32)>, &'a Rat)> {
        let mut out: Vec<(Vec<(CanonVar, u32)>, &Rat)> = self
            .term(t)
            .terms()
            .map(|(mono, c)| {
                let mut m: Vec<(CanonVar, u32)> = mono
                    .iter()
                    .map(|&(v, e)| (canon_var(v, bound, params), e))
                    .collect();
                // Raw monomials are sorted by session-local Var index;
                // canonical tokens order differently — re-sort.
                m.sort_unstable();
                (m, c)
            })
            .collect();
        out.sort_unstable_by(|(m1, _), (m2, _)| m1.cmp(m2));
        out
    }
}

/// A variable token that is invariant across sessions: bound variables by
/// binder depth (innermost = 0), parameters by position, remaining free
/// variables by raw index (they are the query's identity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum CanonVar {
    Bound(u32),
    Param(u32),
    Free(u32),
}

fn canon_var(v: Var, bound: &[Var], params: &[Var]) -> CanonVar {
    match bound.iter().rposition(|b| *b == v) {
        Some(pos) => CanonVar::Bound((bound.len() - 1 - pos) as u32),
        None => match params.iter().position(|p| *p == v) {
            Some(pos) => CanonVar::Param(pos as u32),
            None => CanonVar::Free(v.0),
        },
    }
}

fn write_canon_var(h: &mut Fnv128, v: CanonVar) {
    match v {
        CanonVar::Bound(d) => {
            h.write_u8(0xB0);
            h.write_u32(d);
        }
        CanonVar::Param(i) => {
            h.write_u8(0xB1);
            h.write_u32(i);
        }
        CanonVar::Free(i) => {
            h.write_u8(0xB2);
            h.write_u32(i);
        }
    }
}

fn write_canon_monomial(h: &mut Fnv128, m: &[(CanonVar, u32)]) {
    h.write_usize(m.len());
    for &(v, e) in m {
        write_canon_var(h, v);
        h.write_u32(e);
    }
}

fn write_canon_terms(h: &mut Fnv128, ts: &[(Vec<(CanonVar, u32)>, &Rat)]) {
    h.write_usize(ts.len());
    for (m, c) in ts {
        write_canon_monomial(h, m);
        c.hash(h);
    }
}

// Node-variant tags fed into the hasher; distinct per constructor.
const TAG_TRUE: u8 = 0x01;
const TAG_FALSE: u8 = 0x02;
const TAG_ATOM: u8 = 0x03;
const TAG_REL: u8 = 0x04;
const TAG_NOT: u8 = 0x05;
const TAG_AND: u8 = 0x06;
const TAG_OR: u8 = 0x07;
const TAG_EXISTS: u8 = 0x08;
const TAG_FORALL: u8 = 0x09;
const TAG_EADOM: u8 = 0x0A;
const TAG_AADOM: u8 = 0x0B;

/// Leaf defaults: depth 1, no atoms, quantifier-free, dense-order class.
fn leaf_meta() -> NodeMeta {
    NodeMeta {
        hash: 0,
        free_vars: Vec::new(),
        depth: 1,
        sign_atoms: 0,
        rel_atoms: 0,
        quantifiers: 0,
        adom_quantifiers: 0,
        max_degree: 0,
        class: ConstraintClass::DenseOrder,
        quantifier_free: true,
        relations: Vec::new(),
    }
}

/// Inherited (non-structural) fields of a single-child node — everything the
/// caller doesn't override flows through from the child.
fn up(cm: &NodeMeta) -> NodeMeta {
    NodeMeta {
        hash: 0,
        free_vars: Vec::new(),
        depth: 0,
        relations: Vec::new(),
        ..cm.clone()
    }
}

/// Sorted-vec union.
fn merge_vars(a: &[Var], b: &[Var]) -> Vec<Var> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

fn merge_names(a: &[NameId], b: &[NameId]) -> Vec<NameId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// FNV-1a with a 128-bit state — deterministic across runs, platforms, and
/// sessions (no per-process seeding, unlike `DefaultHasher`), with an
/// avalanche finalizer so structurally close inputs don't produce close
/// digests. Implements [`Hasher`] so `Hash` types (notably [`Rat`]) can feed
/// it directly; `finish()` folds to 64 bits, [`Fnv128::finish128`] keeps all
/// 128.
#[derive(Clone, Debug)]
pub struct Fnv128(u128);

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013B;
// Odd constants for the xor-shift-multiply finalizer (splitmix-style).
const MIX_A: u128 = 0x2d358dccaa6c78a5e6a4c3f29d5f1a87;
const MIX_B: u128 = 0x9e3779b97f4a7c15f39cc0605cedc835;

impl Fnv128 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv128 {
        Fnv128(FNV128_OFFSET)
    }

    /// The full 128-bit digest.
    pub fn finish128(&self) -> u128 {
        let mut x = self.0;
        x ^= x >> 67;
        x = x.wrapping_mul(MIX_A);
        x ^= x >> 59;
        x = x.wrapping_mul(MIX_B);
        x ^= x >> 65;
        x
    }
}

impl Default for Fnv128 {
    fn default() -> Fnv128 {
        Fnv128::new()
    }
}

impl Hasher for Fnv128 {
    fn finish(&self) -> u64 {
        let x = self.finish128();
        (x ^ (x >> 64)) as u64
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    // Fixed-width little-endian encodings, so digests don't depend on the
    // platform's native endianness or pointer width.
    fn write_u8(&mut self, x: u8) {
        self.write(&[x]);
    }
    fn write_u16(&mut self, x: u16) {
        self.write(&x.to_le_bytes());
    }
    fn write_u32(&mut self, x: u32) {
        self.write(&x.to_le_bytes());
    }
    fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }
    fn write_u128(&mut self, x: u128) {
        self.write(&x.to_le_bytes());
    }
    fn write_usize(&mut self, x: usize) {
        self.write(&(x as u64).to_le_bytes());
    }
    fn write_i8(&mut self, x: i8) {
        self.write_u8(x as u8);
    }
    fn write_i16(&mut self, x: i16) {
        self.write_u16(x as u16);
    }
    fn write_i32(&mut self, x: i32) {
        self.write_u32(x as u32);
    }
    fn write_i64(&mut self, x: i64) {
        self.write_u64(x as u64);
    }
    fn write_i128(&mut self, x: i128) {
        self.write_u128(x as u128);
    }
    fn write_isize(&mut self, x: isize) {
        self.write_u64(x as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_formula, parse_formula_with, VarMap};

    fn intern_src(arena: &mut Arena, src: &str) -> FormulaId {
        let (f, _) = parse_formula(src).unwrap();
        arena.intern(&f)
    }

    #[test]
    fn roundtrip_is_lossless() {
        for src in [
            "x < 1",
            "exists y. x < y & y < 1",
            "forall y. (y*y >= 0 | x = y)",
            "Eadom u. R(u, 2*x) & !(u = 0)",
            "x < 1 & x < 1 & (x < 1 | x > 0)",
        ] {
            let (f, _) = parse_formula(src).unwrap();
            let mut arena = Arena::new();
            let id = arena.intern(&f);
            let g = arena.extern_formula(id);
            assert_eq!(g, f, "{src}");
            // Idempotence: re-interning the externed tree is a no-op.
            assert_eq!(arena.intern(&g), id, "{src}");
        }
    }

    #[test]
    fn structurally_equal_subtrees_share_ids() {
        let mut arena = Arena::new();
        let a = intern_src(&mut arena, "x < 1 & y > 0");
        let b = intern_src(&mut arena, "x < 1 & y > 0");
        assert_eq!(a, b);
        let c = intern_src(&mut arena, "x < 1 & y > 1");
        assert_ne!(a, c);
        // `x < 1` occurs in both conjunctions but is stored once.
        let stats = arena.stats();
        assert!(stats.intern_calls > stats.nodes);
        assert!(stats.dedup_ratio() > 1.0);
    }

    #[test]
    fn hash_matches_structural_equality() {
        let mut arena = Arena::new();
        let a = intern_src(&mut arena, "exists y. x < y");
        let b = intern_src(&mut arena, "exists y. x < y");
        let c = intern_src(&mut arena, "exists y. x <= y");
        assert_eq!(arena.structural_hash(a), arena.structural_hash(b));
        assert_ne!(arena.structural_hash(a), arena.structural_hash(c));
    }

    #[test]
    fn metadata_matches_tree_walkers() {
        let srcs = [
            "exists y. x*x + y > 0 & Eadom u. R(u, 2*x)",
            "x + 2*y <= 3 | x = y",
            "forall a, b. a < b | b < a | a = b",
            "!(x < 1) & (x < 2 | exists z. z = x)",
        ];
        for src in srcs {
            let (f, _) = parse_formula(src).unwrap();
            let mut arena = Arena::new();
            let id = arena.intern(&f);
            let m = arena.meta(id);
            assert_eq!(m.atom_count(), f.atom_count() as u64, "{src}");
            assert_eq!(m.quantifiers, f.quantifier_count() as u64, "{src}");
            assert_eq!(m.class, f.class(), "{src}");
            assert_eq!(m.quantifier_free, f.is_quantifier_free(), "{src}");
            let fv: Vec<_> = f.free_vars().into_iter().collect();
            assert_eq!(m.free_vars, fv, "{src}");
            let rels: Vec<String> = m
                .relations
                .iter()
                .map(|&n| arena.rel_name(n).to_string())
                .collect();
            let expect: Vec<String> = f.relation_names().into_iter().collect();
            assert_eq!(rels, expect, "{src}");
        }
    }

    #[test]
    fn canonical_hash_mirrors_string_key_invariances() {
        let mut arena = Arena::new();
        let mut vars = VarMap::new();
        let hash = |src: &str, arena: &mut Arena, vars: &mut VarMap| {
            let f = parse_formula_with(src, vars).unwrap();
            let id = arena.intern(&f);
            arena.canonical_hash_for_params(id, &[])
        };
        // Commutativity.
        assert_eq!(
            hash("x < 1 & y < 2", &mut arena, &mut vars),
            hash("y < 2 & x < 1", &mut arena, &mut vars)
        );
        assert_ne!(
            hash("x < 1 & y < 2", &mut arena, &mut vars),
            hash("x < 1 | y < 2", &mut arena, &mut vars)
        );
        // Scaling.
        assert_eq!(
            hash("2*x < 2", &mut arena, &mut vars),
            hash("x < 1", &mut arena, &mut vars)
        );
        assert_eq!(
            hash("-x > -1", &mut arena, &mut vars),
            hash("x < 1", &mut arena, &mut vars)
        );
        assert_ne!(
            hash("x < 1", &mut arena, &mut vars),
            hash("x < 2", &mut arena, &mut vars)
        );
        // Alpha-renaming of bound variables.
        assert_eq!(
            hash("exists y. x < y", &mut arena, &mut vars),
            hash("exists z. x < z", &mut arena, &mut vars)
        );
        // Bound and free occurrences must not collide.
        assert_ne!(
            hash("exists x. x < 1", &mut arena, &mut vars),
            hash("x < 1", &mut arena, &mut vars)
        );
    }

    #[test]
    fn canonical_hash_is_session_independent_under_params() {
        // Mirror canon.rs's param_positions test: two sessions intern x/y
        // in opposite orders; name-sorted params make the digests agree.
        let mut a = VarMap::new();
        let fa = parse_formula_with("y <= x*x", &mut a).unwrap();
        let mut b = VarMap::new();
        b.intern("x");
        let fb = parse_formula_with("y <= x*x", &mut b).unwrap();
        let mut arena_a = Arena::new();
        let mut arena_b = Arena::new();
        let ia = arena_a.intern(&fa);
        let ib = arena_b.intern(&fb);
        let pa = [a.get("x").unwrap(), a.get("y").unwrap()];
        let pb = [b.get("x").unwrap(), b.get("y").unwrap()];
        assert_ne!(
            arena_a.canonical_hash_for_params(ia, &[]),
            arena_b.canonical_hash_for_params(ib, &[])
        );
        assert_eq!(
            arena_a.canonical_hash_for_params(ia, &pa),
            arena_b.canonical_hash_for_params(ib, &pb)
        );
        // An asymmetric pair must still be distinguished.
        let fc = parse_formula_with("x <= y*y", &mut a).unwrap();
        let ic = arena_a.intern(&fc);
        assert_ne!(
            arena_a.canonical_hash_for_params(ia, &pa),
            arena_a.canonical_hash_for_params(ic, &pa)
        );
    }

    #[test]
    fn fnv128_is_deterministic_and_spreads() {
        let mut h1 = Fnv128::new();
        h1.write(b"hello");
        let mut h2 = Fnv128::new();
        h2.write(b"hello");
        assert_eq!(h1.finish128(), h2.finish128());
        let mut h3 = Fnv128::new();
        h3.write(b"hellp");
        let d = h1.finish128() ^ h3.finish128();
        assert!(d.count_ones() > 32, "poor avalanche: {:#x}", d);
    }
}
