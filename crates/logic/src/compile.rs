//! A compiled evaluation kernel for quantifier-free constraint formulas.
//!
//! [`Formula::eval`] re-walks the AST at every point: each atom lookup
//! traverses a `BTreeMap`, every variable read clones a [`Rat`], and all
//! arithmetic is arbitrary precision. Monte Carlo volume estimation
//! (Theorem 4) evaluates the same matrix at tens of thousands of sample
//! points, so that interpretive overhead dominates the whole workload.
//!
//! [`CompiledMatrix`] lowers a quantifier-free, relation-free formula once
//! into a flat program:
//!
//! * every [`Var`] is resolved at compile time to a dense *slot* index via a
//!   [`SlotMap`] (parameters first, then point variables), eliminating the
//!   per-lookup linear scans;
//! * atoms live in an arena as coefficient/exponent vectors in the
//!   canonical sorted term order, evaluated by fused multiply–add loops;
//! * the boolean structure is flattened into a node arena with contiguous
//!   child ranges, evaluated with short-circuiting `all`/`any`.
//!
//! **Exactness.** Evaluation is dual-path: each atom is first evaluated in
//! `f64` alongside a conservative absolute-error bound; the sign is trusted
//! only when the bound excludes zero-crossing. Otherwise the atom falls
//! back to exact [`Rat`] arithmetic. The result is therefore *bit-identical*
//! to the exact tree walk — the float path is an exactness filter, not an
//! approximation. Sample points drawn through `cqa-approx`'s witness
//! operator are dyadic rationals that convert to `f64` without error, so
//! the fallback triggers only near true sign boundaries.
//!
//! **Batched evaluation.** The Monte Carlo estimators never ask for one
//! point: they sweep the same matrix over thousands. [`Batch`] lays a chunk
//! of up to [`BATCH_LANES`] points out as structure-of-arrays columns (one
//! contiguous `f64` column per slot), and [`CompiledMatrix::eval_batch`]
//! evaluates every atom across the whole chunk with flat coefficient
//! sweeps — auto-vectorizable inner loops over contiguous lanes, a
//! dot-product specialization for degree-1 atoms, and a certified per-atom
//! error column. The boolean program then runs on per-chunk
//! certified-sign/undecided bitmasks ([`LaneMask`]), short-circuiting whole
//! subtrees once every lane is decided; only the lanes whose sign the `f64`
//! sweep could not certify re-run through the exact [`Rat`] path, so the
//! batched result is bit-for-bit the same as a per-point
//! [`CompiledMatrix::eval_f64`] loop.

use crate::ast::{Formula, Rel};
use crate::ir::{Arena, FormulaId, Node};
use cqa_arith::Rat;
use cqa_poly::{MPoly, Var};
use std::collections::HashMap;
use std::fmt;

/// Why a formula cannot be lowered to a [`CompiledMatrix`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The formula contains a quantifier (natural or active-domain); run
    /// quantifier elimination (`cqa-qe`) first.
    Quantifier,
    /// The formula mentions a schema relation; expand relation definitions
    /// (`cqa-core`) first.
    Relation(String),
    /// An atom mentions a variable with no slot in the [`SlotMap`].
    UnboundVar(Var),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Quantifier => {
                write!(
                    f,
                    "formula contains a quantifier; eliminate quantifiers first"
                )
            }
            CompileError::Relation(name) => {
                write!(
                    f,
                    "formula mentions schema relation {name}; expand relations first"
                )
            }
            CompileError::UnboundVar(v) => {
                write!(f, "variable {v} has no assigned slot")
            }
        }
    }
}
impl std::error::Error for CompileError {}

/// A compile-time mapping from [`Var`]s to dense slot indices.
///
/// This is the one shared slot-resolution point for every evaluator that
/// pairs a variable list with a value tuple (the kernel, aggregates,
/// baselines) — replacing the per-variable `iter().position(..)` closures
/// that used to be copy-pasted at each call site.
#[derive(Clone, Debug)]
pub struct SlotMap {
    vars: Vec<Var>,
}

impl SlotMap {
    /// Slots for the concatenation of the groups, in order (convention:
    /// parameters first, then point variables).
    ///
    /// # Panics
    /// Panics if a variable appears twice.
    pub fn new(groups: &[&[Var]]) -> SlotMap {
        let mut vars = Vec::new();
        for g in groups {
            for &v in *g {
                assert!(
                    !vars.contains(&v),
                    "duplicate variable {v} across slot groups"
                );
                vars.push(v);
            }
        }
        SlotMap { vars }
    }

    /// Slots for a single variable list.
    pub fn from_vars(vars: &[Var]) -> SlotMap {
        SlotMap::new(&[vars])
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// `true` iff there are no slots.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The variables in slot order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// The slot of `v`, if any.
    pub fn slot(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|&w| w == v)
    }

    /// A total assignment reading slot values from `values` (variables
    /// without a slot read as zero, matching the historical behaviour of
    /// the inline closures this replaces).
    pub fn assignment<'a>(&'a self, values: &'a [Rat]) -> impl Fn(Var) -> Rat + 'a {
        debug_assert_eq!(values.len(), self.vars.len());
        move |v: Var| {
            self.slot(v)
                .map(|i| values[i].clone())
                .unwrap_or_else(Rat::zero)
        }
    }
}

// ---------------------------------------------------------------------------
// guarded f64 arithmetic
// ---------------------------------------------------------------------------

/// Relative rounding bound per f64 operation (2⁻⁵², ≥ 2× the true unit
/// roundoff — deliberately generous).
const UNIT: f64 = 2.220_446_049_250_313e-16;
/// Multiplicative padding covering the rounding of the error-bound
/// computation itself (a handful of f64 operations, each < 2⁻⁵² relative).
const PAD: f64 = 1.0 + 1e-9;

/// Generous relative inflation for the batch sweep's *uniform* per-chunk
/// error bound: it absorbs the rounding slack between each lane's true
/// Σ|term| and the column-max estimate computed in `f64`. Far larger than
/// needed — inflating a ~1e-16-relative bound by 1e-6 costs essentially
/// nothing in extra fallbacks and keeps the conservativeness argument
/// one-line.
const PAD2: f64 = 1.0 + 1e-6;

/// `(a ± ea) + (b ± eb)`: the computed sum and a bound on its distance from
/// the true real sum.
#[inline]
fn add_err(a: f64, ea: f64, b: f64, eb: f64) -> (f64, f64) {
    let v = a + b;
    (v, (ea + eb + v.abs() * UNIT) * PAD)
}

/// `(a ± ea) · (b ± eb)`: `|xy − ab| ≤ |a|eb + |b|ea + ea·eb` plus the
/// rounding of the product itself.
#[inline]
fn mul_err(a: f64, ea: f64, b: f64, eb: f64) -> (f64, f64) {
    let v = a * b;
    (
        v,
        (a.abs() * eb + b.abs() * ea + ea * eb + v.abs() * UNIT) * PAD,
    )
}

/// The `f64` image of a rational plus a bound on the conversion error
/// (`0.0` exactly when the rational is a representable dyadic — e.g. every
/// witness-operator sample coordinate).
pub fn rat_to_f64_err(r: &Rat) -> (f64, f64) {
    let v = r.to_f64();
    if !v.is_finite() {
        return (0.0, f64::INFINITY);
    }
    match Rat::from_f64(v) {
        Some(back) if back == *r => (v, 0.0),
        Some(back) => {
            let d = (r - &back).abs().to_f64();
            (v, d * PAD + f64::MIN_POSITIVE)
        }
        None => (0.0, f64::INFINITY),
    }
}

// ---------------------------------------------------------------------------
// compiled atoms
// ---------------------------------------------------------------------------

/// One polynomial term: coefficient and `(slot, exponent)` factors.
#[derive(Clone, Debug)]
struct Term {
    coeff: Rat,
    coeff_f64: f64,
    coeff_err: f64,
    /// Sorted by slot; exponents ≥ 1.
    powers: Vec<(u32, u32)>,
}

/// A sign-condition atom with slot-resolved polynomial.
#[derive(Clone, Debug)]
struct CompiledAtom {
    rel: Rel,
    terms: Vec<Term>,
    /// Every coefficient converts to `f64` without error.
    coeffs_exact: bool,
    /// Certified relative rounding factor for the batched exact-input
    /// sweep: when coefficients and slot columns are exact, the computed
    /// lane value differs from the true polynomial value by at most
    /// `gamma · Σ|computed terms|` (see [`CompiledAtom::batch_signs`]).
    gamma: f64,
    /// Degree-≤1 specialization `(constant, [(slot, coefficient)])`,
    /// present only when every term is affine and every coefficient exact:
    /// the batched sweep becomes one dot product per lane.
    linear: Option<(f64, Vec<(u32, f64)>)>,
}

impl CompiledAtom {
    fn compile(poly: &MPoly, rel: Rel, slots: &SlotMap) -> Result<CompiledAtom, CompileError> {
        let mut terms = Vec::with_capacity(poly.num_terms());
        for (mono, coeff) in poly.terms() {
            let mut powers = Vec::with_capacity(mono.len());
            for &(v, e) in mono {
                let slot = slots.slot(v).ok_or(CompileError::UnboundVar(v))? as u32;
                powers.push((slot, e));
            }
            powers.sort_unstable();
            let (coeff_f64, coeff_err) = rat_to_f64_err(coeff);
            terms.push(Term {
                coeff: coeff.clone(),
                coeff_f64,
                coeff_err,
                powers,
            });
        }
        let coeffs_exact = terms.iter().all(|t| t.coeff_err == 0.0);
        // One multiplication per exponent unit plus one addition per term,
        // each contributing ≤ UNIT relative rounding (UNIT is itself ≥ 2×
        // the true unit roundoff); +2 and PAD absorb the second-order
        // cross terms and the rounding of the bound computation.
        let kmax = terms
            .iter()
            .map(|t| t.powers.iter().map(|&(_, e)| e as usize).sum::<usize>())
            .max()
            .unwrap_or(0);
        let gamma = (kmax + terms.len() + 2) as f64 * UNIT * PAD;
        let affine = terms
            .iter()
            .all(|t| t.powers.iter().map(|&(_, e)| e).sum::<u32>() <= 1);
        let linear = if coeffs_exact && affine {
            let mut c0 = 0.0f64;
            let mut lin = Vec::new();
            for t in &terms {
                match t.powers.first() {
                    None => c0 += t.coeff_f64,
                    Some(&(slot, _)) => lin.push((slot, t.coeff_f64)),
                }
            }
            Some((c0, lin))
        } else {
            None
        };
        Ok(CompiledAtom {
            rel,
            terms,
            coeffs_exact,
            gamma,
            linear,
        })
    }

    /// The polynomial's sign from the `f64` fast path, or `None` when the
    /// accumulated error bound admits a sign change (or the computation
    /// left the finite range).
    fn sign_fast(&self, floats: &[f64], errs: &[f64]) -> Option<i32> {
        let mut sum = 0.0f64;
        let mut serr = 0.0f64;
        for t in &self.terms {
            let mut v = t.coeff_f64;
            let mut e = t.coeff_err;
            for &(slot, exp) in &t.powers {
                let xf = floats[slot as usize];
                let xe = errs[slot as usize];
                for _ in 0..exp {
                    (v, e) = mul_err(v, e, xf, xe);
                }
            }
            (sum, serr) = add_err(sum, serr, v, e);
        }
        // NaN-safe: any comparison with NaN is false, so a poisoned bound
        // falls through to the exact path.
        if sum.abs() > serr {
            Some(if sum > 0.0 { 1 } else { -1 })
        } else if sum == 0.0 && serr == 0.0 {
            Some(0)
        } else {
            None
        }
    }

    /// The polynomial's sign by exact rational evaluation.
    fn sign_exact(&self, exact: &dyn Fn(usize) -> Rat) -> i32 {
        let mut acc = Rat::zero();
        for t in &self.terms {
            let mut term = t.coeff.clone();
            for &(slot, exp) in &t.powers {
                term = &term * &exact(slot as usize).pow(exp as i32);
            }
            acc += term;
        }
        acc.signum()
    }

    fn eval(&self, floats: &[f64], errs: &[f64], exact: &dyn Fn(usize) -> Rat) -> bool {
        let sign = self
            .sign_fast(floats, errs)
            .unwrap_or_else(|| self.sign_exact(exact));
        self.rel.sign_satisfies(sign)
    }
}

// ---------------------------------------------------------------------------
// the flat boolean program
// ---------------------------------------------------------------------------

/// A node of the flattened boolean program. `And`/`Or` children are
/// contiguous in the shared child-index arena.
#[derive(Clone, Copy, Debug)]
enum Op {
    True,
    False,
    Atom(u32),
    Not(u32),
    And { start: u32, end: u32 },
    Or { start: u32, end: u32 },
}

/// A quantifier-free, relation-free formula lowered to a flat,
/// slot-indexed program with dual `f64`/exact evaluation.
#[derive(Clone, Debug)]
pub struct CompiledMatrix {
    atoms: Vec<CompiledAtom>,
    nodes: Vec<Op>,
    children: Vec<u32>,
    root: u32,
    n_slots: usize,
}

impl CompiledMatrix {
    /// Lowers `f` with variables resolved through `slots`.
    ///
    /// Rejects formulas that [`Formula::eval`] could not decide either —
    /// quantifiers of any kind and schema relations — so an unevaluable
    /// matrix surfaces here, at construction, instead of silently biasing
    /// a downstream estimate.
    pub fn compile(f: &Formula, slots: &SlotMap) -> Result<CompiledMatrix, CompileError> {
        let mut m = CompiledMatrix {
            atoms: Vec::new(),
            nodes: Vec::new(),
            children: Vec::new(),
            root: 0,
            n_slots: slots.len(),
        };
        m.root = m.lower(f, slots)?;
        Ok(m)
    }

    /// Lowers an interned formula dag, memoized per [`FormulaId`]: a
    /// subformula shared `k` times in the denoted tree compiles to **one**
    /// program node (and its atom enters the arena once), so the program is
    /// O(dag size) where [`CompiledMatrix::compile`] is O(tree size). Same
    /// rejections and bit-identical evaluation semantics as `compile`.
    pub fn compile_arena(
        arena: &Arena,
        id: FormulaId,
        slots: &SlotMap,
    ) -> Result<CompiledMatrix, CompileError> {
        let mut m = CompiledMatrix {
            atoms: Vec::new(),
            nodes: Vec::new(),
            children: Vec::new(),
            root: 0,
            n_slots: slots.len(),
        };
        let mut memo: HashMap<FormulaId, u32> = HashMap::new();
        m.root = m.lower_id(arena, id, slots, &mut memo)?;
        Ok(m)
    }

    /// Number of value slots an evaluation must supply.
    pub fn slot_count(&self) -> usize {
        self.n_slots
    }

    /// Number of distinct atoms in the arena.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    fn push(&mut self, op: Op) -> u32 {
        self.nodes.push(op);
        (self.nodes.len() - 1) as u32
    }

    fn lower(&mut self, f: &Formula, slots: &SlotMap) -> Result<u32, CompileError> {
        match f {
            Formula::True => Ok(self.push(Op::True)),
            Formula::False => Ok(self.push(Op::False)),
            Formula::Atom(a) => match a.as_const() {
                Some(true) => Ok(self.push(Op::True)),
                Some(false) => Ok(self.push(Op::False)),
                None => {
                    let atom = CompiledAtom::compile(&a.poly, a.rel, slots)?;
                    self.atoms.push(atom);
                    let idx = (self.atoms.len() - 1) as u32;
                    Ok(self.push(Op::Atom(idx)))
                }
            },
            Formula::Rel { name, .. } => Err(CompileError::Relation(name.clone())),
            Formula::Not(g) => {
                let c = self.lower(g, slots)?;
                Ok(self.push(Op::Not(c)))
            }
            Formula::And(fs) | Formula::Or(fs) => {
                let kids: Vec<u32> = fs
                    .iter()
                    .map(|g| self.lower(g, slots))
                    .collect::<Result<_, _>>()?;
                let start = self.children.len() as u32;
                self.children.extend_from_slice(&kids);
                let end = self.children.len() as u32;
                Ok(self.push(match f {
                    Formula::And(_) => Op::And { start, end },
                    _ => Op::Or { start, end },
                }))
            }
            Formula::Exists(..)
            | Formula::Forall(..)
            | Formula::ExistsAdom(..)
            | Formula::ForallAdom(..) => Err(CompileError::Quantifier),
        }
    }

    fn lower_id(
        &mut self,
        arena: &Arena,
        id: FormulaId,
        slots: &SlotMap,
        memo: &mut HashMap<FormulaId, u32>,
    ) -> Result<u32, CompileError> {
        if let Some(&n) = memo.get(&id) {
            return Ok(n);
        }
        let n = match arena.node(id) {
            Node::True => self.push(Op::True),
            Node::False => self.push(Op::False),
            Node::Atom { poly, rel } => {
                let p = arena.term(*poly);
                match p.as_constant() {
                    Some(c) if rel.sign_satisfies(c.signum()) => self.push(Op::True),
                    Some(_) => self.push(Op::False),
                    None => {
                        let atom = CompiledAtom::compile(p, *rel, slots)?;
                        self.atoms.push(atom);
                        let idx = (self.atoms.len() - 1) as u32;
                        self.push(Op::Atom(idx))
                    }
                }
            }
            Node::Rel { name, .. } => {
                return Err(CompileError::Relation(arena.rel_name(*name).to_string()))
            }
            Node::Not(g) => {
                let c = self.lower_id(arena, *g, slots, memo)?;
                self.push(Op::Not(c))
            }
            Node::And(fs) | Node::Or(fs) => {
                let is_and = matches!(arena.node(id), Node::And(_));
                let kids: Vec<u32> = fs
                    .iter()
                    .map(|&g| self.lower_id(arena, g, slots, memo))
                    .collect::<Result<_, _>>()?;
                let start = self.children.len() as u32;
                self.children.extend_from_slice(&kids);
                let end = self.children.len() as u32;
                self.push(if is_and {
                    Op::And { start, end }
                } else {
                    Op::Or { start, end }
                })
            }
            Node::Exists(..) | Node::Forall(..) | Node::ExistsAdom(..) | Node::ForallAdom(..) => {
                return Err(CompileError::Quantifier)
            }
        };
        memo.insert(id, n);
        Ok(n)
    }

    /// Evaluates at a point given per slot as an `f64` value plus an
    /// absolute error bound (`errs[i] ≥ |true value − floats[i]|`); `exact`
    /// supplies the true rational slot value on demand, for atoms whose
    /// sign the float path cannot certify.
    ///
    /// With correct bounds the result equals the exact tree walk
    /// bit-for-bit.
    pub fn eval_f64(&self, floats: &[f64], errs: &[f64], exact: &dyn Fn(usize) -> Rat) -> bool {
        debug_assert_eq!(floats.len(), self.n_slots);
        debug_assert_eq!(errs.len(), self.n_slots);
        self.eval_node(self.root, floats, errs, exact)
    }

    /// Evaluates at exact rational slot values (mirrors built internally).
    pub fn eval_rats(&self, values: &[Rat]) -> bool {
        assert_eq!(values.len(), self.n_slots, "slot value count mismatch");
        let mut floats = Vec::with_capacity(values.len());
        let mut errs = Vec::with_capacity(values.len());
        for r in values {
            let (v, e) = rat_to_f64_err(r);
            floats.push(v);
            errs.push(e);
        }
        self.eval_f64(&floats, &errs, &|i| values[i].clone())
    }

    fn eval_node(
        &self,
        node: u32,
        floats: &[f64],
        errs: &[f64],
        exact: &dyn Fn(usize) -> Rat,
    ) -> bool {
        match self.nodes[node as usize] {
            Op::True => true,
            Op::False => false,
            Op::Atom(i) => self.atoms[i as usize].eval(floats, errs, exact),
            Op::Not(c) => !self.eval_node(c, floats, errs, exact),
            Op::And { start, end } => self.children[start as usize..end as usize]
                .iter()
                .all(|&c| self.eval_node(c, floats, errs, exact)),
            Op::Or { start, end } => self.children[start as usize..end as usize]
                .iter()
                .any(|&c| self.eval_node(c, floats, errs, exact)),
        }
    }
}

// ---------------------------------------------------------------------------
// batched (structure-of-arrays) evaluation
// ---------------------------------------------------------------------------

/// Number of point lanes in one [`Batch`] — the structure-of-arrays unit
/// the Monte Carlo estimators sweep. `cqa-approx` schedules its work in
/// chunks of exactly this size, so one scheduling chunk is one batch.
pub const BATCH_LANES: usize = 512;

/// Words per lane bitmask.
const BATCH_WORDS: usize = BATCH_LANES / 64;

/// A [`BATCH_LANES`]-wide bitmask over the lanes of a [`Batch`]. Bits at
/// or above the batch length are always zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneMask {
    words: [u64; BATCH_WORDS],
}

impl LaneMask {
    /// The all-zero mask.
    pub const fn empty() -> LaneMask {
        LaneMask {
            words: [0; BATCH_WORDS],
        }
    }

    /// Ones at every lane below `len`.
    fn full(len: usize) -> LaneMask {
        debug_assert!(len <= BATCH_LANES);
        let mut m = LaneMask::empty();
        for (i, w) in m.words.iter_mut().enumerate() {
            let lo = i * 64;
            if len >= lo + 64 {
                *w = !0;
            } else if len > lo {
                *w = (1u64 << (len - lo)) - 1;
            }
        }
        m
    }

    /// Whether lane `lane` is set.
    pub fn get(&self, lane: usize) -> bool {
        self.words[lane / 64] >> (lane % 64) & 1 == 1
    }

    fn set(&mut self, lane: usize) {
        self.words[lane / 64] |= 1u64 << (lane % 64);
    }

    /// Number of set lanes.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn and(self, o: LaneMask) -> LaneMask {
        let mut m = self;
        for (w, ow) in m.words.iter_mut().zip(o.words) {
            *w &= ow;
        }
        m
    }

    fn or(self, o: LaneMask) -> LaneMask {
        let mut m = self;
        for (w, ow) in m.words.iter_mut().zip(o.words) {
            *w |= ow;
        }
        m
    }
}

/// A chunk of up to [`BATCH_LANES`] evaluation points in column-major
/// (structure-of-arrays) layout: one contiguous `f64` value column and one
/// error column per slot, plus a per-slot exactness flag. Fillers must set
/// the length first ([`Batch::set_len`]) and then populate every slot
/// column; lanes beyond the length are ignored.
#[derive(Clone, Debug)]
pub struct Batch {
    n_slots: usize,
    len: usize,
    /// `n_slots × BATCH_LANES`, column-major by slot.
    values: Vec<f64>,
    errs: Vec<f64>,
    /// Per slot: the error column is known all-zero, so the column holds
    /// the slot values *exactly* (e.g. dyadic witness samples).
    exact: Vec<bool>,
}

impl Batch {
    /// An empty batch with `n_slots` value columns.
    pub fn new(n_slots: usize) -> Batch {
        Batch {
            n_slots,
            len: 0,
            values: vec![0.0; n_slots * BATCH_LANES],
            errs: vec![0.0; n_slots * BATCH_LANES],
            exact: vec![true; n_slots],
        }
    }

    /// Number of slot columns.
    pub fn n_slots(&self) -> usize {
        self.n_slots
    }

    /// Number of active lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no lanes are active.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the number of active lanes (≤ [`BATCH_LANES`]). Call before
    /// filling columns; lane contents are *not* cleared.
    pub fn set_len(&mut self, len: usize) {
        assert!(len <= BATCH_LANES, "batch of {len} lanes exceeds capacity");
        self.len = len;
    }

    /// The value column of `slot` for direct filling, marking the slot
    /// exact (error zero) — the contract for dyadic witness samples.
    pub fn col_mut(&mut self, slot: usize) -> &mut [f64] {
        if !self.exact[slot] {
            self.err_range_mut(slot).fill(0.0);
            self.exact[slot] = true;
        }
        &mut self.values[slot * BATCH_LANES..][..self.len]
    }

    /// Broadcasts one value (e.g. a query parameter) into every lane of
    /// `slot`, with a per-lane absolute error bound.
    pub fn set_uniform(&mut self, slot: usize, value: f64, err: f64) {
        self.values[slot * BATCH_LANES..][..self.len].fill(value);
        self.err_range_mut(slot).fill(err);
        self.exact[slot] = err == 0.0;
    }

    /// Fills the column of `slot` from exact rational values via
    /// [`rat_to_f64_err`], recording per-lane conversion error bounds.
    ///
    /// # Panics
    /// Panics if `vals.len()` differs from the batch length.
    pub fn set_col_rats(&mut self, slot: usize, vals: &[Rat]) {
        assert_eq!(vals.len(), self.len, "column length mismatch");
        let mut all_exact = true;
        for (lane, r) in vals.iter().enumerate() {
            let (v, e) = rat_to_f64_err(r);
            self.values[slot * BATCH_LANES + lane] = v;
            self.errs[slot * BATCH_LANES + lane] = e;
            all_exact &= e == 0.0;
        }
        self.exact[slot] = all_exact;
    }

    /// The `f64` value of `slot` at `lane`.
    pub fn value(&self, slot: usize, lane: usize) -> f64 {
        debug_assert!(lane < self.len);
        self.values[slot * BATCH_LANES + lane]
    }

    fn err(&self, slot: usize, lane: usize) -> f64 {
        self.errs[slot * BATCH_LANES + lane]
    }

    fn col(&self, slot: usize) -> &[f64] {
        &self.values[slot * BATCH_LANES..][..self.len]
    }

    fn err_col(&self, slot: usize) -> &[f64] {
        &self.errs[slot * BATCH_LANES..][..self.len]
    }

    fn err_range_mut(&mut self, slot: usize) -> &mut [f64] {
        &mut self.errs[slot * BATCH_LANES..][..BATCH_LANES]
    }
}

/// Flat per-lane working buffers for the atom sweeps.
#[derive(Debug, Default)]
struct LaneBufs {
    /// Current term value / error per lane.
    tv: Vec<f64>,
    te: Vec<f64>,
    /// Accumulated polynomial value / error per lane.
    accv: Vec<f64>,
    acce: Vec<f64>,
}

/// Reusable scratch for [`CompiledMatrix::eval_batch`]: lane buffers, the
/// per-atom sign plane, and the per-node mask memo. One scratch per worker
/// thread; `eval_batch` resizes it to the kernel on every call, so a single
/// scratch serves kernels of any shape with no per-batch allocation once
/// warm.
#[derive(Debug, Default)]
pub struct BatchScratch {
    bufs: LaneBufs,
    /// Per slot: `max |value|` over the batch's lanes (exact columns
    /// only) — the shared ingredient of every atom's uniform error bound.
    col_max: Vec<f64>,
    /// Per atom: its lane masks have been swept for this batch (swept but
    /// uncertified lanes go straight to exact in the fallback walk).
    atom_done: Vec<bool>,
    /// Per node: memoized `(true-lanes, false-lanes)` masks.
    node_memo: Vec<Option<(LaneMask, LaneMask)>>,
}

impl BatchScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }

    fn reset(&mut self, m: &CompiledMatrix, batch: &Batch) {
        let b = &mut self.bufs;
        for buf in [&mut b.tv, &mut b.te, &mut b.accv, &mut b.acce] {
            buf.resize(BATCH_LANES, 0.0);
        }
        self.col_max.clear();
        for slot in 0..batch.n_slots() {
            self.col_max.push(if batch.exact[slot] {
                batch.col(slot).iter().fold(0.0f64, |m, &x| m.max(x.abs()))
            } else {
                // Inexact columns route through the guarded sweep, which
                // carries its own per-lane error column.
                f64::NAN
            });
        }
        self.atom_done.clear();
        self.atom_done.resize(m.atoms.len(), false);
        self.node_memo.clear();
        self.node_memo.resize(m.nodes.len(), None);
    }
}

/// Outcome of one [`CompiledMatrix::eval_batch`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchResult {
    /// Lanes at which the matrix holds.
    pub mask: LaneMask,
    /// Lanes fully decided by the certified `f64` mask sweep.
    pub fast_lanes: usize,
    /// Lanes that re-ran through the exact rational path.
    pub exact_lanes: usize,
}

/// Lane counters accumulated across many [`CompiledMatrix::eval_batch`]
/// calls: how many sample lanes the certified `f64` sweep decided outright
/// vs how many re-ran through the exact rational path. A rising fallback
/// rate turns a silent slowdown into a visible number.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Lanes decided by the certified fast path.
    pub fast: u64,
    /// Lanes that took the exact fallback.
    pub exact: u64,
}

impl LaneStats {
    /// Folds one batch outcome in.
    pub fn add(&mut self, r: &BatchResult) {
        self.fast += r.fast_lanes as u64;
        self.exact += r.exact_lanes as u64;
    }

    /// Merges another accumulator in.
    pub fn merge(&mut self, o: LaneStats) {
        self.fast += o.fast;
        self.exact += o.exact;
    }

    /// Fraction of lanes that fell back to exact arithmetic (0 when no
    /// lanes were evaluated).
    pub fn fallback_rate(&self) -> f64 {
        let total = self.fast + self.exact;
        if total == 0 {
            0.0
        } else {
            self.exact as f64 / total as f64
        }
    }
}

impl CompiledAtom {
    /// Sweeps this atom across all active lanes of `batch`, returning the
    /// certified `(true-lanes, false-lanes)` masks for its relation.
    ///
    /// Two regimes. When every coefficient and every referenced slot
    /// column is exact, the value column is accumulated with flat
    /// multiply/add lane loops and certified against a *uniform* per-chunk
    /// error bound built from the per-slot column maxima in `col_max`:
    /// `e = (Σ_t |c_t|·Π max|col|^exp) · PAD2 · gamma + MIN_POSITIVE`.
    /// The bound dominates every lane's Σ|computed term| (PAD2 absorbs the
    /// rounding in forming it), it is one scalar per atom instead of a
    /// second accumulated column, and the `MIN_POSITIVE` covers absolute
    /// rounding slop in the subnormal range, where relative bounds fail
    /// (so an exactly-zero value is never certified here; those lanes take
    /// the exact path). Affine atoms with exact coefficients skip the term
    /// buffer entirely and fuse into one dot product. Otherwise the sweep
    /// carries a full error column through [`mul_err`]/[`add_err`] in
    /// exactly [`CompiledAtom::sign_fast`]'s operation order, so its
    /// certifications match the scalar kernel's lane for lane.
    ///
    /// Either way every certified sign is the true sign, so downstream
    /// results are bit-identical to the exact tree walk. The sweep emits
    /// the relation's `(true-lanes, false-lanes)` masks directly — an
    /// unset lane in both masks is uncertified and re-runs exactly.
    fn batch_masks(
        &self,
        batch: &Batch,
        bufs: &mut LaneBufs,
        col_max: &[f64],
        len: usize,
    ) -> (LaneMask, LaneMask) {
        debug_assert_eq!(len, batch.len());
        // `true`-mask membership per certified sign of the polynomial.
        let sat_neg = self.rel.sign_satisfies(-1);
        let sat_zero = self.rel.sign_satisfies(0);
        let sat_pos = self.rel.sign_satisfies(1);
        let mut t = LaneMask::empty();
        let mut f = LaneMask::empty();
        let exact_inputs = self
            .terms
            .iter()
            .all(|t| t.powers.iter().all(|&(s, _)| batch.exact[s as usize]));
        let accv = &mut bufs.accv[..len];
        if self.coeffs_exact && exact_inputs {
            let mut sum_abs;
            if let Some((c0, lin)) = &self.linear {
                let c0 = *c0;
                sum_abs = c0.abs();
                for &(slot, c) in lin {
                    sum_abs += c.abs() * col_max[slot as usize];
                }
                // One fused pass for the common low-arity dot products;
                // the generic path accumulates column by column.
                match lin.as_slice() {
                    [(s1, c1)] => {
                        let xs = batch.col(*s1 as usize);
                        for (a, &x) in accv.iter_mut().zip(xs) {
                            *a = c0 + c1 * x;
                        }
                    }
                    [(s1, c1), (s2, c2)] => {
                        let xs = batch.col(*s1 as usize);
                        let ys = batch.col(*s2 as usize);
                        for ((a, &x), &y) in accv.iter_mut().zip(xs).zip(ys) {
                            *a = (c0 + c1 * x) + c2 * y;
                        }
                    }
                    _ => {
                        accv.fill(c0);
                        for &(slot, c) in lin {
                            let xs = batch.col(slot as usize);
                            for (a, &x) in accv.iter_mut().zip(xs) {
                                *a += c * x;
                            }
                        }
                    }
                }
            } else {
                accv.fill(0.0);
                sum_abs = 0.0;
                let tv = &mut bufs.tv[..len];
                for t in &self.terms {
                    tv.fill(t.coeff_f64);
                    let mut tmax = t.coeff_f64.abs();
                    for &(slot, exp) in &t.powers {
                        let xs = batch.col(slot as usize);
                        for _ in 0..exp {
                            for (v, &x) in tv.iter_mut().zip(xs) {
                                *v *= x;
                            }
                        }
                        tmax *= col_max[slot as usize].powi(exp as i32);
                    }
                    for (a, &v) in accv.iter_mut().zip(tv.iter()) {
                        *a += v;
                    }
                    sum_abs += tmax;
                }
            }
            // NaN/∞-safe: a poisoned value or bound fails the comparison
            // below and the lane stays undecided. `e > 0` always, so an
            // exactly-zero lane is never certified here.
            let e = sum_abs * PAD2 * self.gamma + f64::MIN_POSITIVE;
            // Branchless classification: the sign of `v` is data-dependent
            // noise to the branch predictor, so build the mask bits with
            // arithmetic instead of jumps.
            let (sp, sn) = (sat_pos as u64, sat_neg as u64);
            for (w, chunk) in accv.chunks(64).enumerate() {
                let (mut tw, mut fw) = (0u64, 0u64);
                for (b, &v) in chunk.iter().enumerate() {
                    let dec = (v.abs() > e) as u64;
                    let neg = (v < 0.0) as u64;
                    let sat = neg * sn + (1 - neg) * sp;
                    tw |= (dec & sat) << b;
                    fw |= (dec & (1 - sat)) << b;
                }
                t.words[w] = tw;
                f.words[w] = fw;
            }
        } else {
            let acce = &mut bufs.acce[..len];
            accv.fill(0.0);
            acce.fill(0.0);
            let tv = &mut bufs.tv[..len];
            let te = &mut bufs.te[..len];
            for t in &self.terms {
                tv.fill(t.coeff_f64);
                te.fill(t.coeff_err);
                for &(slot, exp) in &t.powers {
                    let xs = batch.col(slot as usize);
                    let xe = batch.err_col(slot as usize);
                    for _ in 0..exp {
                        for ((v, e), (&x, &xerr)) in
                            tv.iter_mut().zip(te.iter_mut()).zip(xs.iter().zip(xe))
                        {
                            (*v, *e) = mul_err(*v, *e, x, xerr);
                        }
                    }
                }
                for ((a, ae), (&v, &e)) in accv
                    .iter_mut()
                    .zip(acce.iter_mut())
                    .zip(tv.iter().zip(te.iter()))
                {
                    (*a, *ae) = add_err(*a, *ae, v, e);
                }
            }
            for (w, (cv, ce)) in accv.chunks(64).zip(acce.chunks(64)).enumerate() {
                let (mut tw, mut fw) = (0u64, 0u64);
                for (b, (&v, &e)) in cv.iter().zip(ce).enumerate() {
                    let sat = if v.abs() > e {
                        if v > 0.0 {
                            sat_pos
                        } else {
                            sat_neg
                        }
                    } else if v == 0.0 && e == 0.0 {
                        sat_zero
                    } else {
                        continue;
                    };
                    if sat {
                        tw |= 1 << b;
                    } else {
                        fw |= 1 << b;
                    }
                }
                t.words[w] = tw;
                f.words[w] = fw;
            }
        }
        (t, f)
    }

    /// Scalar [`CompiledAtom::sign_fast`] reading one lane out of the
    /// batch columns — for lanes whose subtree the mask sweep
    /// short-circuited past before this atom was ever evaluated.
    fn sign_fast_lane(&self, batch: &Batch, lane: usize) -> Option<i32> {
        let mut sum = 0.0f64;
        let mut serr = 0.0f64;
        for t in &self.terms {
            let mut v = t.coeff_f64;
            let mut e = t.coeff_err;
            for &(slot, exp) in &t.powers {
                let xf = batch.value(slot as usize, lane);
                let xe = batch.err(slot as usize, lane);
                for _ in 0..exp {
                    (v, e) = mul_err(v, e, xf, xe);
                }
            }
            (sum, serr) = add_err(sum, serr, v, e);
        }
        if sum.abs() > serr {
            Some(if sum > 0.0 { 1 } else { -1 })
        } else if sum == 0.0 && serr == 0.0 {
            Some(0)
        } else {
            None
        }
    }
}

impl CompiledMatrix {
    /// Evaluates the matrix at every active lane of `batch` in one sweep.
    ///
    /// Atoms are evaluated lazily as whole columns ([`CompiledAtom::
    /// batch_signs`]); the boolean program then runs on per-node
    /// `(true-lanes, false-lanes)` [`LaneMask`] pairs in three-valued
    /// logic, short-circuiting an entire subtree (and the atom sweeps
    /// under it) once every lane of a conjunction is false or of a
    /// disjunction true. Lanes still undecided at the root — the atoms'
    /// certified error columns admitted a sign flip — re-run individually,
    /// reusing certified signs and falling back to `exact(lane, slot)`
    /// rational evaluation, so the returned mask is bit-identical to a
    /// per-point [`CompiledMatrix::eval_f64`] loop with the same slot
    /// data.
    ///
    /// `scratch` is reusable across calls and kernels; one per worker
    /// thread.
    pub fn eval_batch(
        &self,
        batch: &Batch,
        exact: &dyn Fn(usize, usize) -> Rat,
        scratch: &mut BatchScratch,
    ) -> BatchResult {
        assert_eq!(batch.n_slots(), self.n_slots, "batch slot count mismatch");
        let len = batch.len();
        scratch.reset(self, batch);
        let (t, f) = self.batch_node(self.root, batch, scratch);
        let decided = t.or(f);
        let mut mask = t;
        let mut exact_lanes = 0;
        for lane in 0..len {
            if !decided.get(lane) {
                exact_lanes += 1;
                if self.lane_node(self.root, lane, batch, scratch, exact) {
                    mask.set(lane);
                }
            }
        }
        BatchResult {
            mask,
            fast_lanes: len - exact_lanes,
            exact_lanes,
        }
    }

    /// Three-valued mask evaluation of `node`: lanes certainly true and
    /// lanes certainly false (disjoint; the remainder is undecided).
    /// Memoized per node, so dag-shared subprograms sweep once.
    fn batch_node(&self, node: u32, batch: &Batch, sc: &mut BatchScratch) -> (LaneMask, LaneMask) {
        if let Some(r) = sc.node_memo[node as usize] {
            return r;
        }
        let len = batch.len();
        let r = match self.nodes[node as usize] {
            Op::True => (LaneMask::full(len), LaneMask::empty()),
            Op::False => (LaneMask::empty(), LaneMask::full(len)),
            Op::Atom(i) => {
                let i = i as usize;
                let sc = &mut *sc;
                sc.atom_done[i] = true;
                self.atoms[i].batch_masks(batch, &mut sc.bufs, &sc.col_max, len)
            }
            Op::Not(c) => {
                let (t, f) = self.batch_node(c, batch, sc);
                (f, t)
            }
            Op::And { start, end } => {
                let mut t = LaneMask::full(len);
                let mut f = LaneMask::empty();
                for i in start as usize..end as usize {
                    let (ct, cf) = self.batch_node(self.children[i], batch, sc);
                    t = t.and(ct);
                    f = f.or(cf);
                    if f.count() == len {
                        // Every lane already false: skip the remaining
                        // subtrees (and their atom sweeps) entirely.
                        break;
                    }
                }
                (t, f)
            }
            Op::Or { start, end } => {
                let mut t = LaneMask::empty();
                let mut f = LaneMask::full(len);
                for i in start as usize..end as usize {
                    let (ct, cf) = self.batch_node(self.children[i], batch, sc);
                    t = t.or(ct);
                    f = f.and(cf);
                    if t.count() == len {
                        break;
                    }
                }
                (t, f)
            }
        };
        sc.node_memo[node as usize] = Some(r);
        r
    }

    /// Scalar evaluation of one undecided lane, reusing the batch sweep's
    /// work: memoized node masks decide shared subtrees instantly and
    /// certified atom signs are read back directly; only genuinely
    /// uncertified atoms pay the exact rational evaluation.
    fn lane_node(
        &self,
        node: u32,
        lane: usize,
        batch: &Batch,
        sc: &BatchScratch,
        exact: &dyn Fn(usize, usize) -> Rat,
    ) -> bool {
        if let Some((t, f)) = sc.node_memo[node as usize] {
            if t.get(lane) {
                return true;
            }
            if f.get(lane) {
                return false;
            }
        }
        match self.nodes[node as usize] {
            Op::True => true,
            Op::False => false,
            Op::Atom(i) => {
                let i = i as usize;
                let a = &self.atoms[i];
                // A swept atom's certified lanes were answered by the
                // node-memo masks above, so landing here means this lane
                // stayed uncertified: only exact arithmetic can decide it.
                // A never-swept atom (short-circuited past) first gets the
                // scalar certified try.
                let sign = if sc.atom_done[i] {
                    a.sign_exact(&|slot| exact(lane, slot))
                } else {
                    a.sign_fast_lane(batch, lane)
                        .unwrap_or_else(|| a.sign_exact(&|slot| exact(lane, slot)))
                };
                a.rel.sign_satisfies(sign)
            }
            Op::Not(c) => !self.lane_node(c, lane, batch, sc, exact),
            Op::And { start, end } => self.children[start as usize..end as usize]
                .iter()
                .all(|&c| self.lane_node(c, lane, batch, sc, exact)),
            Op::Or { start, end } => self.children[start as usize..end as usize]
                .iter()
                .any(|&c| self.lane_node(c, lane, batch, sc, exact)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_formula_with;
    use crate::VarMap;
    use cqa_arith::rat;

    fn compile(src: &str, names: &[&str]) -> (CompiledMatrix, SlotMap, Formula) {
        let mut vars = VarMap::new();
        let vs: Vec<Var> = names.iter().map(|n| vars.intern(n)).collect();
        let f = parse_formula_with(src, &mut vars).unwrap();
        let slots = SlotMap::from_vars(&vs);
        let m = CompiledMatrix::compile(&f, &slots).unwrap();
        (m, slots, f)
    }

    #[test]
    fn agrees_with_interpreter_on_grid() {
        let (m, slots, f) = compile(
            "(x + y <= 1 | x*x + y*y < 1) & !(x = y) | 2*x - 3*y >= 1",
            &["x", "y"],
        );
        for xn in -6..=6 {
            for yn in -6..=6 {
                let vals = vec![rat(xn, 4), rat(yn, 4)];
                let want = f.eval(&slots.assignment(&vals), &[]).unwrap();
                assert_eq!(m.eval_rats(&vals), want, "at ({xn}/4, {yn}/4)");
            }
        }
    }

    #[test]
    fn boundary_points_use_exact_fallback() {
        // x + y = 1 exactly on the boundary: the float bound cannot certify
        // a nonzero sign, so the exact path must decide — correctly.
        let (m, _, _) = compile("x + y <= 1", &["x", "y"]);
        assert!(m.eval_rats(&[rat(1, 3), rat(2, 3)]));
        let (strict, _, _) = compile("x + y < 1", &["x", "y"]);
        assert!(!strict.eval_rats(&[rat(1, 3), rat(2, 3)]));
        // Non-dyadic values force conversion error > 0 on every slot.
        assert!(strict.eval_rats(&[rat(1, 3), rat(1, 3)]));
    }

    #[test]
    fn constant_atoms_fold() {
        let (m, _, _) = compile("1 < 2 & x >= 0", &["x"]);
        assert_eq!(m.atom_count(), 1);
        assert!(m.eval_rats(&[rat(0, 1)]));
    }

    #[test]
    fn rejects_quantifiers_relations_and_unbound_vars() {
        let mut vars = VarMap::new();
        let x = vars.intern("x");
        let slots = SlotMap::from_vars(&[x]);
        let q = parse_formula_with("exists y. x < y", &mut vars).unwrap();
        assert_eq!(
            CompiledMatrix::compile(&q, &slots).unwrap_err(),
            CompileError::Quantifier
        );
        let r = parse_formula_with("T(x)", &mut vars).unwrap();
        assert_eq!(
            CompiledMatrix::compile(&r, &slots).unwrap_err(),
            CompileError::Relation("T".into())
        );
        let y = vars.get("y").unwrap();
        let u = parse_formula_with("x < y", &mut vars).unwrap();
        assert_eq!(
            CompiledMatrix::compile(&u, &slots).unwrap_err(),
            CompileError::UnboundVar(y)
        );
    }

    #[test]
    fn slot_map_resolution() {
        let (p, q, r) = (Var(3), Var(7), Var(1));
        let slots = SlotMap::new(&[&[p, q], &[r]]);
        assert_eq!(slots.len(), 3);
        assert_eq!(slots.slot(q), Some(1));
        assert_eq!(slots.slot(r), Some(2));
        assert_eq!(slots.slot(Var(0)), None);
        let vals = vec![rat(1, 1), rat(2, 1), rat(3, 1)];
        let asg = slots.assignment(&vals);
        assert_eq!(asg(r), rat(3, 1));
        assert_eq!(asg(Var(9)), rat(0, 1));
    }

    #[test]
    fn conversion_error_is_zero_for_dyadics() {
        let (_, e) = rat_to_f64_err(&rat(3, 8));
        assert_eq!(e, 0.0);
        let (_, e) = rat_to_f64_err(&rat(1, 3));
        assert!(e > 0.0 && e < 1e-15);
    }

    #[test]
    fn arena_compile_memoizes_shared_nodes() {
        let mut vars = VarMap::new();
        let x = vars.intern("x");
        let f = parse_formula_with("(x < 1 & x > 0) | (x < 1 & x > 0) | x < 1", &mut vars).unwrap();
        let slots = SlotMap::from_vars(&[x]);
        let tree = CompiledMatrix::compile(&f, &slots).unwrap();
        let mut arena = Arena::new();
        let id = arena.intern(&f);
        let dag = CompiledMatrix::compile_arena(&arena, id, &slots).unwrap();
        // The repeated conjunction and the repeated atoms compile once.
        assert!(dag.atom_count() < tree.atom_count());
        assert!(dag.nodes.len() < tree.nodes.len());
        for xn in -4..=4 {
            let vals = vec![rat(xn, 2)];
            assert_eq!(dag.eval_rats(&vals), tree.eval_rats(&vals), "x = {xn}/2");
        }
    }

    #[test]
    fn huge_values_fall_back_exactly() {
        // 10^200 · x − 1 > 0 at x = 10⁻²⁰⁰ + tiny: f64 overflows/loses the
        // signal; the exact path must still decide correctly.
        let ten200 = rat(10, 1).pow(200);
        let x = Var(0);
        let poly = MPoly::var(x).scale(&ten200) - MPoly::one();
        let f = Formula::Atom(crate::Atom::new(poly, Rel::Gt));
        let slots = SlotMap::from_vars(&[x]);
        let m = CompiledMatrix::compile(&f, &slots).unwrap();
        let eps = &ten200.recip() + &rat(10, 1).pow(-300);
        assert!(m.eval_rats(&[eps]));
        assert!(!m.eval_rats(&[ten200.recip()]));
    }

    /// Evaluates `pts` through one batch, returning per-point booleans and
    /// the batch result.
    fn batch_points(m: &CompiledMatrix, pts: &[Vec<Rat>]) -> (Vec<bool>, BatchResult) {
        let mut batch = Batch::new(m.slot_count());
        batch.set_len(pts.len());
        for slot in 0..m.slot_count() {
            let col: Vec<Rat> = pts.iter().map(|p| p[slot].clone()).collect();
            batch.set_col_rats(slot, &col);
        }
        let mut scratch = BatchScratch::new();
        let exact = |lane: usize, slot: usize| pts[lane][slot].clone();
        let r = m.eval_batch(&batch, &exact, &mut scratch);
        ((0..pts.len()).map(|l| r.mask.get(l)).collect(), r)
    }

    #[test]
    fn lane_mask_basics() {
        let mut m = LaneMask::empty();
        assert_eq!(m.count(), 0);
        m.set(0);
        m.set(63);
        m.set(64);
        m.set(511);
        assert_eq!(m.count(), 4);
        assert!(m.get(64) && !m.get(65));
        assert_eq!(LaneMask::full(0), LaneMask::empty());
        assert_eq!(LaneMask::full(BATCH_LANES).count(), BATCH_LANES);
        let f = LaneMask::full(70);
        assert_eq!(f.count(), 70);
        assert!(f.get(69) && !f.get(70));
        assert_eq!(f.and(m).count(), 3);
        assert_eq!(f.or(m), f.or(m).or(m));
    }

    #[test]
    fn batch_matches_eval_rats_on_grid() {
        let (m, _, _) = compile(
            "(x + y <= 1 | x*x + y*y < 1) & !(x = y) | 2*x - 3*y >= 1",
            &["x", "y"],
        );
        let pts: Vec<Vec<Rat>> = (-6..=6)
            .flat_map(|xn| (-6..=6).map(move |yn| vec![rat(xn, 4), rat(yn, 4)]))
            .collect();
        let (got, r) = batch_points(&m, &pts);
        assert_eq!(r.fast_lanes + r.exact_lanes, pts.len());
        for (pt, got) in pts.iter().zip(got) {
            assert_eq!(got, m.eval_rats(pt), "at {pt:?}");
        }
    }

    #[test]
    fn batch_boundary_lane_takes_exact_fallback() {
        let (m, _, _) = compile("x + y <= 1", &["x", "y"]);
        // Lane 1 sits exactly on the boundary: the sweep cannot certify a
        // zero with a nonzero error column, so exactly that lane re-runs
        // through the exact rational path — and still decides true.
        let pts = vec![
            vec![rat(1, 8), rat(1, 4)],
            vec![rat(1, 4), rat(3, 4)],
            vec![rat(7, 8), rat(7, 8)],
        ];
        let (got, r) = batch_points(&m, &pts);
        assert_eq!(got, vec![true, true, false]);
        assert_eq!(r.exact_lanes, 1);
        assert_eq!(r.fast_lanes, 2);
    }

    #[test]
    fn batch_uniform_inexact_param_uses_guarded_sweep() {
        // Slot 0 is a broadcast parameter a = 1/3 with conversion error:
        // the guarded sweep must carry the error column and the strict
        // comparison a < x must still be decided exactly at x = 1/3.
        let (m, _, _) = compile("a < x", &["a", "x"]);
        let a = rat(1, 3);
        let xs = [rat(1, 3), rat(1, 2), rat(1, 4)];
        let mut batch = Batch::new(2);
        batch.set_len(xs.len());
        let (af, ae) = rat_to_f64_err(&a);
        assert!(ae > 0.0);
        batch.set_uniform(0, af, ae);
        batch.set_col_rats(1, &xs);
        let mut scratch = BatchScratch::new();
        let exact = |lane: usize, slot: usize| {
            if slot == 0 {
                a.clone()
            } else {
                xs[lane].clone()
            }
        };
        let r = m.eval_batch(&batch, &exact, &mut scratch);
        assert!(!r.mask.get(0), "1/3 < 1/3 is false");
        assert!(r.mask.get(1));
        assert!(!r.mask.get(2));
        assert!(r.exact_lanes >= 1, "boundary lane must go exact");
    }

    #[test]
    fn batch_scratch_reuse_across_kernels() {
        let (m1, _, _) = compile("x + y <= 1", &["x", "y"]);
        let (m2, _, _) = compile("x*x + y*y < 1 & x > 0 & y > 0", &["x", "y"]);
        let pts: Vec<Vec<Rat>> = (0..20).map(|i| vec![rat(i, 20), rat(19 - i, 17)]).collect();
        let mut scratch = BatchScratch::new();
        for m in [&m1, &m2, &m1] {
            let mut batch = Batch::new(2);
            batch.set_len(pts.len());
            for slot in 0..2 {
                let col: Vec<Rat> = pts.iter().map(|p| p[slot].clone()).collect();
                batch.set_col_rats(slot, &col);
            }
            let exact = |lane: usize, slot: usize| pts[lane][slot].clone();
            let r = m.eval_batch(&batch, &exact, &mut scratch);
            for (lane, pt) in pts.iter().enumerate() {
                assert_eq!(r.mask.get(lane), m.eval_rats(pt), "at {pt:?}");
            }
        }
    }

    #[test]
    fn batch_empty_is_empty() {
        let (m, _, _) = compile("x >= 0", &["x"]);
        let (got, r) = batch_points(&m, &[]);
        assert!(got.is_empty());
        assert_eq!(r, BatchResult::default());
    }
}
