//! A compiled evaluation kernel for quantifier-free constraint formulas.
//!
//! [`Formula::eval`] re-walks the AST at every point: each atom lookup
//! traverses a `BTreeMap`, every variable read clones a [`Rat`], and all
//! arithmetic is arbitrary precision. Monte Carlo volume estimation
//! (Theorem 4) evaluates the same matrix at tens of thousands of sample
//! points, so that interpretive overhead dominates the whole workload.
//!
//! [`CompiledMatrix`] lowers a quantifier-free, relation-free formula once
//! into a flat program:
//!
//! * every [`Var`] is resolved at compile time to a dense *slot* index via a
//!   [`SlotMap`] (parameters first, then point variables), eliminating the
//!   per-lookup linear scans;
//! * atoms live in an arena as coefficient/exponent vectors in the
//!   canonical sorted term order, evaluated by fused multiply–add loops;
//! * the boolean structure is flattened into a node arena with contiguous
//!   child ranges, evaluated with short-circuiting `all`/`any`.
//!
//! **Exactness.** Evaluation is dual-path: each atom is first evaluated in
//! `f64` alongside a conservative absolute-error bound; the sign is trusted
//! only when the bound excludes zero-crossing. Otherwise the atom falls
//! back to exact [`Rat`] arithmetic. The result is therefore *bit-identical*
//! to the exact tree walk — the float path is an exactness filter, not an
//! approximation. Sample points drawn through `cqa-approx`'s witness
//! operator are dyadic rationals that convert to `f64` without error, so
//! the fallback triggers only near true sign boundaries.

use crate::ast::{Formula, Rel};
use crate::ir::{Arena, FormulaId, Node};
use cqa_arith::Rat;
use cqa_poly::{MPoly, Var};
use std::collections::HashMap;
use std::fmt;

/// Why a formula cannot be lowered to a [`CompiledMatrix`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The formula contains a quantifier (natural or active-domain); run
    /// quantifier elimination (`cqa-qe`) first.
    Quantifier,
    /// The formula mentions a schema relation; expand relation definitions
    /// (`cqa-core`) first.
    Relation(String),
    /// An atom mentions a variable with no slot in the [`SlotMap`].
    UnboundVar(Var),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Quantifier => {
                write!(
                    f,
                    "formula contains a quantifier; eliminate quantifiers first"
                )
            }
            CompileError::Relation(name) => {
                write!(
                    f,
                    "formula mentions schema relation {name}; expand relations first"
                )
            }
            CompileError::UnboundVar(v) => {
                write!(f, "variable {v} has no assigned slot")
            }
        }
    }
}
impl std::error::Error for CompileError {}

/// A compile-time mapping from [`Var`]s to dense slot indices.
///
/// This is the one shared slot-resolution point for every evaluator that
/// pairs a variable list with a value tuple (the kernel, aggregates,
/// baselines) — replacing the per-variable `iter().position(..)` closures
/// that used to be copy-pasted at each call site.
#[derive(Clone, Debug)]
pub struct SlotMap {
    vars: Vec<Var>,
}

impl SlotMap {
    /// Slots for the concatenation of the groups, in order (convention:
    /// parameters first, then point variables).
    ///
    /// # Panics
    /// Panics if a variable appears twice.
    pub fn new(groups: &[&[Var]]) -> SlotMap {
        let mut vars = Vec::new();
        for g in groups {
            for &v in *g {
                assert!(
                    !vars.contains(&v),
                    "duplicate variable {v} across slot groups"
                );
                vars.push(v);
            }
        }
        SlotMap { vars }
    }

    /// Slots for a single variable list.
    pub fn from_vars(vars: &[Var]) -> SlotMap {
        SlotMap::new(&[vars])
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// `true` iff there are no slots.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The variables in slot order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// The slot of `v`, if any.
    pub fn slot(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|&w| w == v)
    }

    /// A total assignment reading slot values from `values` (variables
    /// without a slot read as zero, matching the historical behaviour of
    /// the inline closures this replaces).
    pub fn assignment<'a>(&'a self, values: &'a [Rat]) -> impl Fn(Var) -> Rat + 'a {
        debug_assert_eq!(values.len(), self.vars.len());
        move |v: Var| {
            self.slot(v)
                .map(|i| values[i].clone())
                .unwrap_or_else(Rat::zero)
        }
    }
}

// ---------------------------------------------------------------------------
// guarded f64 arithmetic
// ---------------------------------------------------------------------------

/// Relative rounding bound per f64 operation (2⁻⁵², ≥ 2× the true unit
/// roundoff — deliberately generous).
const UNIT: f64 = 2.220_446_049_250_313e-16;
/// Multiplicative padding covering the rounding of the error-bound
/// computation itself (a handful of f64 operations, each < 2⁻⁵² relative).
const PAD: f64 = 1.0 + 1e-9;

/// `(a ± ea) + (b ± eb)`: the computed sum and a bound on its distance from
/// the true real sum.
#[inline]
fn add_err(a: f64, ea: f64, b: f64, eb: f64) -> (f64, f64) {
    let v = a + b;
    (v, (ea + eb + v.abs() * UNIT) * PAD)
}

/// `(a ± ea) · (b ± eb)`: `|xy − ab| ≤ |a|eb + |b|ea + ea·eb` plus the
/// rounding of the product itself.
#[inline]
fn mul_err(a: f64, ea: f64, b: f64, eb: f64) -> (f64, f64) {
    let v = a * b;
    (
        v,
        (a.abs() * eb + b.abs() * ea + ea * eb + v.abs() * UNIT) * PAD,
    )
}

/// The `f64` image of a rational plus a bound on the conversion error
/// (`0.0` exactly when the rational is a representable dyadic — e.g. every
/// witness-operator sample coordinate).
pub fn rat_to_f64_err(r: &Rat) -> (f64, f64) {
    let v = r.to_f64();
    if !v.is_finite() {
        return (0.0, f64::INFINITY);
    }
    match Rat::from_f64(v) {
        Some(back) if back == *r => (v, 0.0),
        Some(back) => {
            let d = (r - &back).abs().to_f64();
            (v, d * PAD + f64::MIN_POSITIVE)
        }
        None => (0.0, f64::INFINITY),
    }
}

// ---------------------------------------------------------------------------
// compiled atoms
// ---------------------------------------------------------------------------

/// One polynomial term: coefficient and `(slot, exponent)` factors.
#[derive(Clone, Debug)]
struct Term {
    coeff: Rat,
    coeff_f64: f64,
    coeff_err: f64,
    /// Sorted by slot; exponents ≥ 1.
    powers: Vec<(u32, u32)>,
}

/// A sign-condition atom with slot-resolved polynomial.
#[derive(Clone, Debug)]
struct CompiledAtom {
    rel: Rel,
    terms: Vec<Term>,
}

impl CompiledAtom {
    fn compile(poly: &MPoly, rel: Rel, slots: &SlotMap) -> Result<CompiledAtom, CompileError> {
        let mut terms = Vec::with_capacity(poly.num_terms());
        for (mono, coeff) in poly.terms() {
            let mut powers = Vec::with_capacity(mono.len());
            for &(v, e) in mono {
                let slot = slots.slot(v).ok_or(CompileError::UnboundVar(v))? as u32;
                powers.push((slot, e));
            }
            powers.sort_unstable();
            let (coeff_f64, coeff_err) = rat_to_f64_err(coeff);
            terms.push(Term {
                coeff: coeff.clone(),
                coeff_f64,
                coeff_err,
                powers,
            });
        }
        Ok(CompiledAtom { rel, terms })
    }

    /// The polynomial's sign from the `f64` fast path, or `None` when the
    /// accumulated error bound admits a sign change (or the computation
    /// left the finite range).
    fn sign_fast(&self, floats: &[f64], errs: &[f64]) -> Option<i32> {
        let mut sum = 0.0f64;
        let mut serr = 0.0f64;
        for t in &self.terms {
            let mut v = t.coeff_f64;
            let mut e = t.coeff_err;
            for &(slot, exp) in &t.powers {
                let xf = floats[slot as usize];
                let xe = errs[slot as usize];
                for _ in 0..exp {
                    (v, e) = mul_err(v, e, xf, xe);
                }
            }
            (sum, serr) = add_err(sum, serr, v, e);
        }
        // NaN-safe: any comparison with NaN is false, so a poisoned bound
        // falls through to the exact path.
        if sum.abs() > serr {
            Some(if sum > 0.0 { 1 } else { -1 })
        } else if sum == 0.0 && serr == 0.0 {
            Some(0)
        } else {
            None
        }
    }

    /// The polynomial's sign by exact rational evaluation.
    fn sign_exact(&self, exact: &dyn Fn(usize) -> Rat) -> i32 {
        let mut acc = Rat::zero();
        for t in &self.terms {
            let mut term = t.coeff.clone();
            for &(slot, exp) in &t.powers {
                term = &term * &exact(slot as usize).pow(exp as i32);
            }
            acc += term;
        }
        acc.signum()
    }

    fn eval(&self, floats: &[f64], errs: &[f64], exact: &dyn Fn(usize) -> Rat) -> bool {
        let sign = self
            .sign_fast(floats, errs)
            .unwrap_or_else(|| self.sign_exact(exact));
        self.rel.sign_satisfies(sign)
    }
}

// ---------------------------------------------------------------------------
// the flat boolean program
// ---------------------------------------------------------------------------

/// A node of the flattened boolean program. `And`/`Or` children are
/// contiguous in the shared child-index arena.
#[derive(Clone, Copy, Debug)]
enum Op {
    True,
    False,
    Atom(u32),
    Not(u32),
    And { start: u32, end: u32 },
    Or { start: u32, end: u32 },
}

/// A quantifier-free, relation-free formula lowered to a flat,
/// slot-indexed program with dual `f64`/exact evaluation.
#[derive(Clone, Debug)]
pub struct CompiledMatrix {
    atoms: Vec<CompiledAtom>,
    nodes: Vec<Op>,
    children: Vec<u32>,
    root: u32,
    n_slots: usize,
}

impl CompiledMatrix {
    /// Lowers `f` with variables resolved through `slots`.
    ///
    /// Rejects formulas that [`Formula::eval`] could not decide either —
    /// quantifiers of any kind and schema relations — so an unevaluable
    /// matrix surfaces here, at construction, instead of silently biasing
    /// a downstream estimate.
    pub fn compile(f: &Formula, slots: &SlotMap) -> Result<CompiledMatrix, CompileError> {
        let mut m = CompiledMatrix {
            atoms: Vec::new(),
            nodes: Vec::new(),
            children: Vec::new(),
            root: 0,
            n_slots: slots.len(),
        };
        m.root = m.lower(f, slots)?;
        Ok(m)
    }

    /// Lowers an interned formula dag, memoized per [`FormulaId`]: a
    /// subformula shared `k` times in the denoted tree compiles to **one**
    /// program node (and its atom enters the arena once), so the program is
    /// O(dag size) where [`CompiledMatrix::compile`] is O(tree size). Same
    /// rejections and bit-identical evaluation semantics as `compile`.
    pub fn compile_arena(
        arena: &Arena,
        id: FormulaId,
        slots: &SlotMap,
    ) -> Result<CompiledMatrix, CompileError> {
        let mut m = CompiledMatrix {
            atoms: Vec::new(),
            nodes: Vec::new(),
            children: Vec::new(),
            root: 0,
            n_slots: slots.len(),
        };
        let mut memo: HashMap<FormulaId, u32> = HashMap::new();
        m.root = m.lower_id(arena, id, slots, &mut memo)?;
        Ok(m)
    }

    /// Number of value slots an evaluation must supply.
    pub fn slot_count(&self) -> usize {
        self.n_slots
    }

    /// Number of distinct atoms in the arena.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    fn push(&mut self, op: Op) -> u32 {
        self.nodes.push(op);
        (self.nodes.len() - 1) as u32
    }

    fn lower(&mut self, f: &Formula, slots: &SlotMap) -> Result<u32, CompileError> {
        match f {
            Formula::True => Ok(self.push(Op::True)),
            Formula::False => Ok(self.push(Op::False)),
            Formula::Atom(a) => match a.as_const() {
                Some(true) => Ok(self.push(Op::True)),
                Some(false) => Ok(self.push(Op::False)),
                None => {
                    let atom = CompiledAtom::compile(&a.poly, a.rel, slots)?;
                    self.atoms.push(atom);
                    let idx = (self.atoms.len() - 1) as u32;
                    Ok(self.push(Op::Atom(idx)))
                }
            },
            Formula::Rel { name, .. } => Err(CompileError::Relation(name.clone())),
            Formula::Not(g) => {
                let c = self.lower(g, slots)?;
                Ok(self.push(Op::Not(c)))
            }
            Formula::And(fs) | Formula::Or(fs) => {
                let kids: Vec<u32> = fs
                    .iter()
                    .map(|g| self.lower(g, slots))
                    .collect::<Result<_, _>>()?;
                let start = self.children.len() as u32;
                self.children.extend_from_slice(&kids);
                let end = self.children.len() as u32;
                Ok(self.push(match f {
                    Formula::And(_) => Op::And { start, end },
                    _ => Op::Or { start, end },
                }))
            }
            Formula::Exists(..)
            | Formula::Forall(..)
            | Formula::ExistsAdom(..)
            | Formula::ForallAdom(..) => Err(CompileError::Quantifier),
        }
    }

    fn lower_id(
        &mut self,
        arena: &Arena,
        id: FormulaId,
        slots: &SlotMap,
        memo: &mut HashMap<FormulaId, u32>,
    ) -> Result<u32, CompileError> {
        if let Some(&n) = memo.get(&id) {
            return Ok(n);
        }
        let n = match arena.node(id) {
            Node::True => self.push(Op::True),
            Node::False => self.push(Op::False),
            Node::Atom { poly, rel } => {
                let p = arena.term(*poly);
                match p.as_constant() {
                    Some(c) if rel.sign_satisfies(c.signum()) => self.push(Op::True),
                    Some(_) => self.push(Op::False),
                    None => {
                        let atom = CompiledAtom::compile(p, *rel, slots)?;
                        self.atoms.push(atom);
                        let idx = (self.atoms.len() - 1) as u32;
                        self.push(Op::Atom(idx))
                    }
                }
            }
            Node::Rel { name, .. } => {
                return Err(CompileError::Relation(arena.rel_name(*name).to_string()))
            }
            Node::Not(g) => {
                let c = self.lower_id(arena, *g, slots, memo)?;
                self.push(Op::Not(c))
            }
            Node::And(fs) | Node::Or(fs) => {
                let is_and = matches!(arena.node(id), Node::And(_));
                let kids: Vec<u32> = fs
                    .iter()
                    .map(|&g| self.lower_id(arena, g, slots, memo))
                    .collect::<Result<_, _>>()?;
                let start = self.children.len() as u32;
                self.children.extend_from_slice(&kids);
                let end = self.children.len() as u32;
                self.push(if is_and {
                    Op::And { start, end }
                } else {
                    Op::Or { start, end }
                })
            }
            Node::Exists(..) | Node::Forall(..) | Node::ExistsAdom(..) | Node::ForallAdom(..) => {
                return Err(CompileError::Quantifier)
            }
        };
        memo.insert(id, n);
        Ok(n)
    }

    /// Evaluates at a point given per slot as an `f64` value plus an
    /// absolute error bound (`errs[i] ≥ |true value − floats[i]|`); `exact`
    /// supplies the true rational slot value on demand, for atoms whose
    /// sign the float path cannot certify.
    ///
    /// With correct bounds the result equals the exact tree walk
    /// bit-for-bit.
    pub fn eval_f64(&self, floats: &[f64], errs: &[f64], exact: &dyn Fn(usize) -> Rat) -> bool {
        debug_assert_eq!(floats.len(), self.n_slots);
        debug_assert_eq!(errs.len(), self.n_slots);
        self.eval_node(self.root, floats, errs, exact)
    }

    /// Evaluates at exact rational slot values (mirrors built internally).
    pub fn eval_rats(&self, values: &[Rat]) -> bool {
        assert_eq!(values.len(), self.n_slots, "slot value count mismatch");
        let mut floats = Vec::with_capacity(values.len());
        let mut errs = Vec::with_capacity(values.len());
        for r in values {
            let (v, e) = rat_to_f64_err(r);
            floats.push(v);
            errs.push(e);
        }
        self.eval_f64(&floats, &errs, &|i| values[i].clone())
    }

    fn eval_node(
        &self,
        node: u32,
        floats: &[f64],
        errs: &[f64],
        exact: &dyn Fn(usize) -> Rat,
    ) -> bool {
        match self.nodes[node as usize] {
            Op::True => true,
            Op::False => false,
            Op::Atom(i) => self.atoms[i as usize].eval(floats, errs, exact),
            Op::Not(c) => !self.eval_node(c, floats, errs, exact),
            Op::And { start, end } => self.children[start as usize..end as usize]
                .iter()
                .all(|&c| self.eval_node(c, floats, errs, exact)),
            Op::Or { start, end } => self.children[start as usize..end as usize]
                .iter()
                .any(|&c| self.eval_node(c, floats, errs, exact)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_formula_with;
    use crate::VarMap;
    use cqa_arith::rat;

    fn compile(src: &str, names: &[&str]) -> (CompiledMatrix, SlotMap, Formula) {
        let mut vars = VarMap::new();
        let vs: Vec<Var> = names.iter().map(|n| vars.intern(n)).collect();
        let f = parse_formula_with(src, &mut vars).unwrap();
        let slots = SlotMap::from_vars(&vs);
        let m = CompiledMatrix::compile(&f, &slots).unwrap();
        (m, slots, f)
    }

    #[test]
    fn agrees_with_interpreter_on_grid() {
        let (m, slots, f) = compile(
            "(x + y <= 1 | x*x + y*y < 1) & !(x = y) | 2*x - 3*y >= 1",
            &["x", "y"],
        );
        for xn in -6..=6 {
            for yn in -6..=6 {
                let vals = vec![rat(xn, 4), rat(yn, 4)];
                let want = f.eval(&slots.assignment(&vals), &[]).unwrap();
                assert_eq!(m.eval_rats(&vals), want, "at ({xn}/4, {yn}/4)");
            }
        }
    }

    #[test]
    fn boundary_points_use_exact_fallback() {
        // x + y = 1 exactly on the boundary: the float bound cannot certify
        // a nonzero sign, so the exact path must decide — correctly.
        let (m, _, _) = compile("x + y <= 1", &["x", "y"]);
        assert!(m.eval_rats(&[rat(1, 3), rat(2, 3)]));
        let (strict, _, _) = compile("x + y < 1", &["x", "y"]);
        assert!(!strict.eval_rats(&[rat(1, 3), rat(2, 3)]));
        // Non-dyadic values force conversion error > 0 on every slot.
        assert!(strict.eval_rats(&[rat(1, 3), rat(1, 3)]));
    }

    #[test]
    fn constant_atoms_fold() {
        let (m, _, _) = compile("1 < 2 & x >= 0", &["x"]);
        assert_eq!(m.atom_count(), 1);
        assert!(m.eval_rats(&[rat(0, 1)]));
    }

    #[test]
    fn rejects_quantifiers_relations_and_unbound_vars() {
        let mut vars = VarMap::new();
        let x = vars.intern("x");
        let slots = SlotMap::from_vars(&[x]);
        let q = parse_formula_with("exists y. x < y", &mut vars).unwrap();
        assert_eq!(
            CompiledMatrix::compile(&q, &slots).unwrap_err(),
            CompileError::Quantifier
        );
        let r = parse_formula_with("T(x)", &mut vars).unwrap();
        assert_eq!(
            CompiledMatrix::compile(&r, &slots).unwrap_err(),
            CompileError::Relation("T".into())
        );
        let y = vars.get("y").unwrap();
        let u = parse_formula_with("x < y", &mut vars).unwrap();
        assert_eq!(
            CompiledMatrix::compile(&u, &slots).unwrap_err(),
            CompileError::UnboundVar(y)
        );
    }

    #[test]
    fn slot_map_resolution() {
        let (p, q, r) = (Var(3), Var(7), Var(1));
        let slots = SlotMap::new(&[&[p, q], &[r]]);
        assert_eq!(slots.len(), 3);
        assert_eq!(slots.slot(q), Some(1));
        assert_eq!(slots.slot(r), Some(2));
        assert_eq!(slots.slot(Var(0)), None);
        let vals = vec![rat(1, 1), rat(2, 1), rat(3, 1)];
        let asg = slots.assignment(&vals);
        assert_eq!(asg(r), rat(3, 1));
        assert_eq!(asg(Var(9)), rat(0, 1));
    }

    #[test]
    fn conversion_error_is_zero_for_dyadics() {
        let (_, e) = rat_to_f64_err(&rat(3, 8));
        assert_eq!(e, 0.0);
        let (_, e) = rat_to_f64_err(&rat(1, 3));
        assert!(e > 0.0 && e < 1e-15);
    }

    #[test]
    fn arena_compile_memoizes_shared_nodes() {
        let mut vars = VarMap::new();
        let x = vars.intern("x");
        let f = parse_formula_with("(x < 1 & x > 0) | (x < 1 & x > 0) | x < 1", &mut vars).unwrap();
        let slots = SlotMap::from_vars(&[x]);
        let tree = CompiledMatrix::compile(&f, &slots).unwrap();
        let mut arena = Arena::new();
        let id = arena.intern(&f);
        let dag = CompiledMatrix::compile_arena(&arena, id, &slots).unwrap();
        // The repeated conjunction and the repeated atoms compile once.
        assert!(dag.atom_count() < tree.atom_count());
        assert!(dag.nodes.len() < tree.nodes.len());
        for xn in -4..=4 {
            let vals = vec![rat(xn, 2)];
            assert_eq!(dag.eval_rats(&vals), tree.eval_rats(&vals), "x = {xn}/2");
        }
    }

    #[test]
    fn huge_values_fall_back_exactly() {
        // 10^200 · x − 1 > 0 at x = 10⁻²⁰⁰ + tiny: f64 overflows/loses the
        // signal; the exact path must still decide correctly.
        let ten200 = rat(10, 1).pow(200);
        let x = Var(0);
        let poly = MPoly::var(x).scale(&ten200) - MPoly::one();
        let f = Formula::Atom(crate::Atom::new(poly, Rel::Gt));
        let slots = SlotMap::from_vars(&[x]);
        let m = CompiledMatrix::compile(&f, &slots).unwrap();
        let eps = &ten200.recip() + &rat(10, 1).pow(-300);
        assert!(m.eval_rats(&[eps]));
        assert!(!m.eval_rats(&[ten200.recip()]));
    }
}
