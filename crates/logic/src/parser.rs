//! A recursive-descent parser for constraint formulas.
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! formula  := iff
//! iff      := implies ( '<->' implies )*
//! implies  := or ( '->' implies )?               (right associative)
//! or       := and ( '|' and )*
//! and      := unary ( '&' unary )*
//! unary    := '!' unary
//!           | ('exists'|'E') ident+ '.' unary
//!           | ('forall'|'A') ident+ '.' unary
//!           | ('Eadom'|'Aadom') ident '.' unary
//!           | 'true' | 'false'
//!           | '(' formula ')'
//!           | atom
//! atom     := term (('='|'!='|'<'|'<='|'>'|'>=') term)+   (chained compares)
//!           | IDENT '(' term (',' term)* ')'              (relation atom)
//! term     := product (('+'|'-') product)*
//! product  := power (('*') power)*  with implicit unary minus
//! power    := primary ('^' NAT)?
//! primary  := NUMBER | IDENT | '(' term ')' | '-' primary
//! ```
//!
//! Numbers may be integers or decimal literals like `0.5` (parsed exactly
//! as rationals); `/` divides a term by a non-zero rational constant, so
//! fractions such as `1/2` work as expected.
//!
//! The parser natively builds a [`SpannedFormula`] — a faithful parse tree
//! with byte spans on every node, the input to `cqa-analyze` — and the
//! plain-[`Formula`] entry points lower it through the simplifying smart
//! constructors, so both views always agree.

use crate::ast::{Formula, Rel};
use crate::span::{BoundVar, Span, SpannedFormula, SpannedNode};
use crate::varmap::VarMap;
use cqa_arith::Rat;
use cqa_poly::MPoly;
use std::fmt;

/// A parse failure, with a byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the source where the error occurred.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.msg)
    }
}
impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(Rat),
    Sym(&'static str),
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    toks: Vec<(Span, Tok)>,
}

impl<'a> Lexer<'a> {
    fn run(src: &'a str) -> Result<Vec<(Span, Tok)>, ParseError> {
        let mut lx = Lexer {
            src: src.as_bytes(),
            pos: 0,
            toks: Vec::new(),
        };
        lx.lex()?;
        Ok(lx.toks)
    }

    fn lex(&mut self) -> Result<(), ParseError> {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                b'0'..=b'9' => self.number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                _ => self.symbol()?,
            }
        }
        Ok(())
    }

    fn number(&mut self) -> Result<(), ParseError> {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos < self.src.len()
            && self.src[self.pos] == b'.'
            && self.pos + 1 < self.src.len()
            && self.src[self.pos + 1].is_ascii_digit()
        {
            self.pos += 1;
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let value: Rat = text.parse().map_err(|_| ParseError {
            at: start,
            msg: format!("bad number `{text}`"),
        })?;
        self.toks
            .push((Span::new(start, self.pos), Tok::Num(value)));
        Ok(())
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        self.toks
            .push((Span::new(start, self.pos), Tok::Ident(text.to_string())));
    }

    fn symbol(&mut self) -> Result<(), ParseError> {
        const TWO: [&str; 5] = ["<->", "->", "<=", ">=", "!="];
        const ONE: [&str; 13] = [
            "(", ")", ",", ".", "&", "|", "!", "<", ">", "=", "+", "-", "/",
        ];
        let rest = &self.src[self.pos..];
        for s in TWO {
            if rest.starts_with(s.as_bytes()) {
                self.toks
                    .push((Span::new(self.pos, self.pos + s.len()), Tok::Sym(s)));
                self.pos += s.len();
                return Ok(());
            }
        }
        for s in ONE.iter().chain(["*", "^"].iter()) {
            if rest.starts_with(s.as_bytes()) {
                self.toks
                    .push((Span::new(self.pos, self.pos + s.len()), Tok::Sym(s)));
                self.pos += s.len();
                return Ok(());
            }
        }
        Err(ParseError {
            at: self.pos,
            msg: format!("unexpected character `{}`", self.src[self.pos] as char),
        })
    }
}

struct Parser<'a> {
    toks: Vec<(Span, Tok)>,
    pos: usize,
    vars: &'a mut VarMap,
    src_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.toks
            .get(self.pos)
            .map_or(self.src_len, |(s, _)| s.start)
    }

    /// End offset of the most recently consumed token.
    fn prev_end(&self) -> usize {
        if self.pos == 0 {
            0
        } else {
            self.toks
                .get(self.pos - 1)
                .map_or(self.src_len, |(s, _)| s.end)
        }
    }

    /// Span from `start` to the end of the last consumed token.
    fn span_from(&self, start: usize) -> Span {
        Span::new(start, self.prev_end().max(start))
    }

    /// Span of the current token (or an empty span at end of input).
    fn cur_span(&self) -> Span {
        self.toks
            .get(self.pos)
            .map_or(Span::new(self.src_len, self.src_len), |(s, _)| *s)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Sym(t)) if *t == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(ParseError {
                at: self.at(),
                msg: format!("expected `{s}`"),
            })
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            at: self.at(),
            msg: msg.into(),
        })
    }

    // ---- formulas ----

    fn formula(&mut self) -> Result<SpannedFormula, ParseError> {
        let start = self.at();
        let mut f = self.implies()?;
        while self.eat_sym("<->") {
            let g = self.implies()?;
            let span = self.span_from(start);
            let fwd = f.clone().implies(g.clone(), span);
            let bwd = g.implies(f, span);
            f = SpannedFormula {
                node: SpannedNode::And(vec![fwd, bwd]),
                span,
            };
        }
        Ok(f)
    }

    fn implies(&mut self) -> Result<SpannedFormula, ParseError> {
        let start = self.at();
        let f = self.or_f()?;
        if self.eat_sym("->") {
            let g = self.implies()?;
            let span = self.span_from(start);
            Ok(f.implies(g, span))
        } else {
            Ok(f)
        }
    }

    fn or_f(&mut self) -> Result<SpannedFormula, ParseError> {
        let start = self.at();
        let f = self.and_f()?;
        if !matches!(self.peek(), Some(Tok::Sym("|"))) {
            return Ok(f);
        }
        let mut parts = vec![f];
        while self.eat_sym("|") {
            parts.push(self.and_f()?);
        }
        Ok(SpannedFormula {
            node: SpannedNode::Or(parts),
            span: self.span_from(start),
        })
    }

    fn and_f(&mut self) -> Result<SpannedFormula, ParseError> {
        let start = self.at();
        let f = self.unary()?;
        if !matches!(self.peek(), Some(Tok::Sym("&"))) {
            return Ok(f);
        }
        let mut parts = vec![f];
        while self.eat_sym("&") {
            parts.push(self.unary()?);
        }
        Ok(SpannedFormula {
            node: SpannedNode::And(parts),
            span: self.span_from(start),
        })
    }

    fn unary(&mut self) -> Result<SpannedFormula, ParseError> {
        let start = self.at();
        if self.eat_sym("!") {
            let mut f = self.unary()?.negate();
            f.span = self.span_from(start);
            return Ok(f);
        }
        // `E(` / `A(` are relation atoms, not quantifiers.
        let next_is_paren = matches!(self.toks.get(self.pos + 1), Some((_, Tok::Sym("("))));
        match self.peek() {
            Some(Tok::Ident(kw)) if kw == "exists" || (kw == "E" && !next_is_paren) => {
                self.pos += 1;
                self.quantifier(start, true, false)
            }
            Some(Tok::Ident(kw)) if kw == "forall" || (kw == "A" && !next_is_paren) => {
                self.pos += 1;
                self.quantifier(start, false, false)
            }
            Some(Tok::Ident(kw)) if kw == "Eadom" => {
                self.pos += 1;
                self.quantifier(start, true, true)
            }
            Some(Tok::Ident(kw)) if kw == "Aadom" => {
                self.pos += 1;
                self.quantifier(start, false, true)
            }
            Some(Tok::Ident(kw)) if kw == "true" => {
                let span = self.cur_span();
                self.pos += 1;
                Ok(SpannedFormula {
                    node: SpannedNode::True,
                    span,
                })
            }
            Some(Tok::Ident(kw)) if kw == "false" => {
                let span = self.cur_span();
                self.pos += 1;
                Ok(SpannedFormula {
                    node: SpannedNode::False,
                    span,
                })
            }
            _ => self.atom_or_group(),
        }
    }

    fn quantifier(
        &mut self,
        start: usize,
        exists: bool,
        adom: bool,
    ) -> Result<SpannedFormula, ParseError> {
        let mut vars = Vec::new();
        while let Some(Tok::Ident(name)) = self.peek() {
            let name = name.clone();
            let span = self.cur_span();
            self.pos += 1;
            vars.push(BoundVar {
                var: self.vars.intern(&name),
                span,
            });
            // Separating commas between bound variables are optional.
            let _ = self.eat_sym(",");
        }
        if vars.is_empty() {
            return self.err("quantifier needs at least one variable");
        }
        self.expect_sym(".")?;
        // Quantifier scope extends as far right as possible.
        let body = Box::new(self.formula()?);
        let span = self.span_from(start);
        if adom {
            if vars.len() != 1 {
                return self.err("active-domain quantifier binds one variable");
            }
            let v = vars.pop().unwrap();
            Ok(SpannedFormula {
                node: if exists {
                    SpannedNode::ExistsAdom(v, body)
                } else {
                    SpannedNode::ForallAdom(v, body)
                },
                span,
            })
        } else {
            Ok(SpannedFormula {
                node: if exists {
                    SpannedNode::Exists(vars, body)
                } else {
                    SpannedNode::Forall(vars, body)
                },
                span,
            })
        }
    }

    /// Parses `( formula )`, a relation atom `R(t,…)`, or a comparison chain.
    fn atom_or_group(&mut self) -> Result<SpannedFormula, ParseError> {
        let start = self.at();
        // Relation atom: uppercase-ish identifier followed by '(' and NOT
        // parseable as a term function — we treat any IDENT '(' as a relation
        // if the identifier was not interned as a variable beforehand and the
        // formula context expects an atom. To stay predictable we use the
        // convention: relation names start with an uppercase letter.
        if let Some(Tok::Ident(name)) = self.peek() {
            if name.chars().next().is_some_and(char::is_uppercase)
                && !matches!(name.as_str(), "Eadom" | "Aadom")
                && matches!(self.toks.get(self.pos + 1), Some((_, Tok::Sym("("))))
            {
                let name = name.clone();
                let name_span = self.cur_span();
                self.pos += 2;
                let mut args = vec![self.term()?];
                while self.eat_sym(",") {
                    args.push(self.term()?);
                }
                self.expect_sym(")")?;
                return Ok(SpannedFormula {
                    node: SpannedNode::Rel {
                        name,
                        args,
                        name_span,
                    },
                    span: self.span_from(start),
                });
            }
        }
        // Group: '(' could open a parenthesized formula or a term. Try the
        // formula first with backtracking.
        if matches!(self.peek(), Some(Tok::Sym("("))) {
            let save = self.pos;
            self.pos += 1;
            if let Ok(mut f) = self.formula() {
                if self.eat_sym(")") {
                    // If a comparison follows, this was actually a term group.
                    if !self.peeking_comparison() {
                        f.span = self.span_from(start);
                        return Ok(f);
                    }
                }
            }
            self.pos = save;
        }
        self.comparison()
    }

    fn peeking_comparison(&self) -> bool {
        matches!(
            self.peek(),
            Some(Tok::Sym(
                "=" | "!=" | "<" | "<=" | ">" | ">=" | "+" | "-" | "*" | "^"
            ))
        )
    }

    fn comparison(&mut self) -> Result<SpannedFormula, ParseError> {
        let start = self.at();
        let mut term_spans = Vec::new();
        let first = self.term()?;
        term_spans.push(self.span_from(start));
        let mut terms = vec![first];
        let mut rels = Vec::new();
        loop {
            let rel = match self.peek() {
                Some(Tok::Sym("=")) => Rel::Eq,
                Some(Tok::Sym("!=")) => Rel::Neq,
                Some(Tok::Sym("<")) => Rel::Lt,
                Some(Tok::Sym("<=")) => Rel::Le,
                Some(Tok::Sym(">")) => Rel::Gt,
                Some(Tok::Sym(">=")) => Rel::Ge,
                _ => break,
            };
            self.pos += 1;
            rels.push(rel);
            let tstart = self.at();
            terms.push(self.term()?);
            term_spans.push(self.span_from(tstart));
        }
        if rels.is_empty() {
            return self.err("expected a comparison operator");
        }
        // Chained comparisons: a < b <= c means a < b & b <= c.
        let mut atoms = Vec::with_capacity(rels.len());
        for (i, rel) in rels.iter().enumerate() {
            let lhs = terms[i].clone();
            let rhs = terms[i + 1].clone();
            atoms.push(SpannedFormula {
                node: SpannedNode::Atom(crate::ast::Atom::new(lhs - rhs, *rel)),
                span: term_spans[i].join(term_spans[i + 1]),
            });
        }
        if atoms.len() == 1 {
            Ok(atoms.pop().unwrap())
        } else {
            Ok(SpannedFormula {
                node: SpannedNode::And(atoms),
                span: self.span_from(start),
            })
        }
    }

    // ---- terms ----

    fn term(&mut self) -> Result<MPoly, ParseError> {
        let mut t = self.product()?;
        loop {
            if self.eat_sym("+") {
                t = t + self.product()?;
            } else if self.eat_sym("-") {
                t = t - self.product()?;
            } else {
                break;
            }
        }
        Ok(t)
    }

    fn product(&mut self) -> Result<MPoly, ParseError> {
        let mut t = self.power()?;
        loop {
            if self.eat_sym("*") {
                t = t * self.power()?;
            } else if self.eat_sym("/") {
                let at = self.at();
                let rhs = self.power()?;
                match rhs.as_constant() {
                    Some(c) if !c.is_zero() => t = t.scale(&c.recip()),
                    _ => {
                        return Err(ParseError {
                            at,
                            msg: "division only by a non-zero rational constant".into(),
                        })
                    }
                }
            } else {
                break;
            }
        }
        Ok(t)
    }

    fn power(&mut self) -> Result<MPoly, ParseError> {
        let base = self.primary()?;
        if self.eat_sym("^") {
            match self.bump() {
                Some(Tok::Num(n)) if n.is_integer() && !n.is_negative() => {
                    let e = n
                        .numer()
                        .to_i64()
                        .filter(|&e| e <= u32::MAX as i64)
                        .ok_or_else(|| ParseError {
                            at: self.at(),
                            msg: "exponent too large".into(),
                        })?;
                    Ok(base.pow(e as u32))
                }
                _ => self.err("expected a natural-number exponent"),
            }
        } else {
            Ok(base)
        }
    }

    fn primary(&mut self) -> Result<MPoly, ParseError> {
        if self.eat_sym("-") {
            return Ok(-self.primary()?);
        }
        match self.bump() {
            Some(Tok::Num(n)) => Ok(MPoly::constant(n)),
            Some(Tok::Ident(name)) => Ok(MPoly::var(self.vars.intern(&name))),
            Some(Tok::Sym("(")) => {
                let t = self.term()?;
                self.expect_sym(")")?;
                Ok(t)
            }
            _ => {
                self.pos -= 1;
                self.err("expected a term")
            }
        }
    }
}

/// Parses a formula, returning it with a fresh [`VarMap`] of its variables.
pub fn parse_formula(src: &str) -> Result<(Formula, VarMap), ParseError> {
    let mut vars = VarMap::new();
    let f = parse_formula_with(src, &mut vars)?;
    Ok((f, vars))
}

/// Parses a formula using (and extending) an existing variable map, so that
/// several formulas can share variable identities.
pub fn parse_formula_with(src: &str, vars: &mut VarMap) -> Result<Formula, ParseError> {
    Ok(parse_formula_spanned(src, vars)?.to_formula())
}

/// Parses a formula into the span-carrying parse tree (the input of
/// `cqa-analyze`), using and extending an existing variable map.
pub fn parse_formula_spanned(src: &str, vars: &mut VarMap) -> Result<SpannedFormula, ParseError> {
    let toks = Lexer::run(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        vars,
        src_len: src.len(),
    };
    let f = p.formula()?;
    if p.pos != p.toks.len() {
        return p.err("trailing input");
    }
    Ok(f)
}

/// Parses a polynomial term using an existing variable map.
pub fn parse_term_with(src: &str, vars: &mut VarMap) -> Result<MPoly, ParseError> {
    let toks = Lexer::run(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        vars,
        src_len: src.len(),
    };
    let t = p.term()?;
    if p.pos != p.toks.len() {
        return p.err("trailing input");
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ConstraintClass;
    use cqa_arith::rat;
    use cqa_poly::Var;

    #[test]
    fn parse_simple_atom() {
        let (f, vars) = parse_formula("x < y").unwrap();
        assert_eq!(vars.len(), 2);
        assert!(matches!(f, Formula::Atom(ref a) if a.rel == Rel::Lt));
    }

    #[test]
    fn parse_connectives_and_precedence() {
        let (f, _) = parse_formula("x < 1 & y < 1 | x > 2").unwrap();
        // | binds looser than &
        assert!(matches!(f, Formula::Or(_)));
        let (g, _) = parse_formula("x < 1 & (y < 1 | x > 2)").unwrap();
        assert!(matches!(g, Formula::And(_)));
    }

    #[test]
    fn parse_quantifiers() {
        let (f, vars) = parse_formula("exists y. x + y = 1").unwrap();
        match f {
            Formula::Exists(vs, _) => assert_eq!(vs, vec![vars.get("y").unwrap()]),
            other => panic!("{other:?}"),
        }
        let (g, _) = parse_formula("E y. A z. x + y < z").unwrap();
        assert!(matches!(g, Formula::Exists(..)));
        let (h, _) = parse_formula("Eadom u. U(u) & u < x").unwrap();
        assert!(matches!(h, Formula::ExistsAdom(..)));
    }

    #[test]
    fn parse_multi_var_quantifier() {
        let (f, _) = parse_formula("exists y, z. x = y + z").unwrap();
        match f {
            Formula::Exists(vs, _) => assert_eq!(vs.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_relation_atom() {
        let (f, _) = parse_formula("U(x) & x < 1").unwrap();
        let names = f.relation_names();
        assert!(names.contains("U"));
        let (g, _) = parse_formula("S(x, y + 1)").unwrap();
        match g {
            Formula::Rel { name, args } => {
                assert_eq!(name, "S");
                assert_eq!(args.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_chained_comparison() {
        let (f, _) = parse_formula("0 <= x < y <= 1").unwrap();
        match f {
            Formula::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_arithmetic() {
        let mut vars = VarMap::new();
        let t = parse_term_with("2*x^2 - 3*x*y + 0.5", &mut vars).unwrap();
        let x = vars.get("x").unwrap();
        let y = vars.get("y").unwrap();
        let expect = MPoly::var(x).pow(2).scale(&rat(2, 1))
            - (MPoly::var(x) * MPoly::var(y)).scale(&rat(3, 1))
            + MPoly::constant(rat(1, 2));
        assert_eq!(t, expect);
    }

    #[test]
    fn parse_implication_and_iff() {
        let (f, _) = parse_formula("x < 0 -> x < 1").unwrap();
        // Semantically: x >= 0 | x < 1, always true for reals; check eval.
        for v in [-1i64, 0, 5] {
            assert_eq!(f.eval(&|_| rat(v, 1), &[]), Some(true));
        }
        let (g, _) = parse_formula("x < 0 <-> 0 > x").unwrap();
        for v in [-1i64, 3] {
            assert_eq!(g.eval(&|_| rat(v, 1), &[]), Some(true));
        }
    }

    #[test]
    fn parse_negation_and_constants() {
        let (f, _) = parse_formula("!(x < 1) & true").unwrap();
        assert!(matches!(f, Formula::Atom(ref a) if a.rel == Rel::Ge));
        let (g, _) = parse_formula("false | x = 0").unwrap();
        assert!(matches!(g, Formula::Atom(_)));
    }

    #[test]
    fn parse_classes() {
        assert_eq!(
            parse_formula("x < y").unwrap().0.class(),
            ConstraintClass::DenseOrder
        );
        assert_eq!(
            parse_formula("x + y < 1").unwrap().0.class(),
            ConstraintClass::Linear
        );
        assert_eq!(
            parse_formula("x*x + y < 1").unwrap().0.class(),
            ConstraintClass::Polynomial
        );
    }

    #[test]
    fn parse_grouped_formula_vs_term() {
        let (f, _) = parse_formula("(x + 1) * 2 < y").unwrap();
        assert!(matches!(f, Formula::Atom(_)));
        let (g, _) = parse_formula("(x < 1) & (y < 1)").unwrap();
        assert!(matches!(g, Formula::And(_)));
    }

    #[test]
    fn shared_varmap_across_parses() {
        let mut vars = VarMap::new();
        let f = parse_formula_with("x < 1", &mut vars).unwrap();
        let g = parse_formula_with("x > 0", &mut vars).unwrap();
        assert_eq!(f.free_vars(), g.free_vars());
        assert_eq!(vars.len(), 1);
    }

    #[test]
    fn errors() {
        assert!(parse_formula("x <").is_err());
        assert!(parse_formula("x # y").is_err());
        assert!(parse_formula("exists . x < 1").is_err());
        assert!(parse_formula("x < 1 garbage garbage").is_err());
        assert!(parse_formula("x ^ y").is_err()); // non-constant exponent
    }

    #[test]
    fn decimal_literals_exact() {
        let (f, _) = parse_formula("x = 0.1").unwrap();
        match f {
            Formula::Atom(a) => {
                // x - 1/10
                assert_eq!(
                    a.poly.subst_rat(Var(0), &rat(1, 10)).as_constant(),
                    Some(rat(0, 1))
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spanned_parse_carries_byte_spans() {
        let src = "exists y. x + y = 1 & S(x)";
        let mut vars = VarMap::new();
        let f = parse_formula_spanned(src, &mut vars).unwrap();
        // Whole formula spans the full source.
        assert_eq!(f.span, Span::new(0, src.len()));
        match &f.node {
            SpannedNode::Exists(vs, body) => {
                assert_eq!(&src[vs[0].span.start..vs[0].span.end], "y");
                match &body.node {
                    SpannedNode::And(parts) => {
                        assert_eq!(&src[parts[0].span.start..parts[0].span.end], "x + y = 1");
                        match &parts[1].node {
                            SpannedNode::Rel { name_span, .. } => {
                                assert_eq!(&src[name_span.start..name_span.end], "S");
                            }
                            other => panic!("{other:?}"),
                        }
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn spanned_lowering_matches_plain_parse() {
        let sources = [
            "x < y",
            "x < 1 & y < 1 | x > 2",
            "!(x < 1) & true",
            "false | x = 0",
            "exists y, z. x = y + z",
            "0 <= x < y <= 1",
            "x < 0 -> x < 1",
            "x < 0 <-> 0 > x",
            "Eadom u. U(u) & u < x",
            "forall y. exists z. x + y < z | S(x, y)",
            "(x + 1) * 2 < y",
            "!!(x = 1)",
        ];
        for src in sources {
            let mut v1 = VarMap::new();
            let mut v2 = VarMap::new();
            let plain = parse_formula_with(src, &mut v1).unwrap();
            let spanned = parse_formula_spanned(src, &mut v2).unwrap();
            assert_eq!(spanned.to_formula(), plain, "source: {src}");
        }
    }

    #[test]
    fn spanned_shift_moves_every_span() {
        let mut vars = VarMap::new();
        let mut f = parse_formula_spanned("x < 1 & S(y)", &mut vars).unwrap();
        let before = f.span;
        f.shift(10);
        assert_eq!(f.span, before.shift(10));
        f.visit(&mut |g| assert!(g.span.start >= 10));
    }
}
