//! The formula AST and its basic structural operations.

use cqa_arith::Rat;
use cqa_poly::{MPoly, Var};
use std::collections::BTreeSet;

/// Comparison relations for atomic constraints `p ⋈ 0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `p = 0`
    Eq,
    /// `p ≠ 0`
    Neq,
    /// `p < 0`
    Lt,
    /// `p ≤ 0`
    Le,
    /// `p > 0`
    Gt,
    /// `p ≥ 0`
    Ge,
}

impl Rel {
    /// The relation satisfied by exactly the complementary sign set.
    pub fn negate(self) -> Rel {
        match self {
            Rel::Eq => Rel::Neq,
            Rel::Neq => Rel::Eq,
            Rel::Lt => Rel::Ge,
            Rel::Le => Rel::Gt,
            Rel::Gt => Rel::Le,
            Rel::Ge => Rel::Lt,
        }
    }

    /// The relation with the two sides of the comparison swapped
    /// (`p ⋈ 0  ⇔  -p ⋈ʳ 0`).
    pub fn flip(self) -> Rel {
        match self {
            Rel::Eq => Rel::Eq,
            Rel::Neq => Rel::Neq,
            Rel::Lt => Rel::Gt,
            Rel::Le => Rel::Ge,
            Rel::Gt => Rel::Lt,
            Rel::Ge => Rel::Le,
        }
    }

    /// Whether a value of the given sign (`-1`, `0`, `1`) satisfies the
    /// relation.
    pub fn sign_satisfies(self, sign: i32) -> bool {
        match self {
            Rel::Eq => sign == 0,
            Rel::Neq => sign != 0,
            Rel::Lt => sign < 0,
            Rel::Le => sign <= 0,
            Rel::Gt => sign > 0,
            Rel::Ge => sign >= 0,
        }
    }
}

/// An atomic constraint: a sign condition `poly ⋈ 0` on a polynomial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// The left-hand-side polynomial (compared against zero).
    pub poly: MPoly,
    /// The comparison relation.
    pub rel: Rel,
}

impl Atom {
    /// Creates `poly ⋈ 0`.
    pub fn new(poly: MPoly, rel: Rel) -> Atom {
        Atom { poly, rel }
    }

    /// Evaluates the atom at a point (total assignment of its variables).
    pub fn eval(&self, assignment: &dyn Fn(Var) -> Rat) -> bool {
        self.rel.sign_satisfies(self.poly.eval(assignment).signum())
    }

    /// `true` iff the polynomial is affine (degree ≤ 1), i.e. a linear
    /// constraint.
    pub fn is_linear(&self) -> bool {
        self.poly.is_affine()
    }

    /// Decides constant atoms (`poly` a constant): `Some(truth)` or `None`.
    pub fn as_const(&self) -> Option<bool> {
        self.poly
            .as_constant()
            .map(|c| self.rel.sign_satisfies(c.signum()))
    }
}

/// Which constraint class a formula's atoms fall into (Section 2 of the
/// paper): dense-order (`⟨ℝ,<⟩`), linear (FO+LIN) or polynomial (FO+POLY).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConstraintClass {
    /// Atoms compare variables and rational constants only: `x < y`, `x ≤ 3`.
    DenseOrder,
    /// Atoms are affine: FO+LIN.
    Linear,
    /// Atoms are arbitrary polynomials: FO+POLY.
    Polynomial,
}

/// A first-order formula over a relational schema and a real constraint
/// signature.
///
/// `And`/`Or` are n-ary for convenience (an empty `And` is `⊤`, an empty
/// `Or` is `⊥`, mirroring `True`/`False`).
#[derive(Clone, Debug, PartialEq)]
pub enum Formula {
    /// The true formula.
    True,
    /// The false formula.
    False,
    /// A sign-condition atom over the reals.
    Atom(Atom),
    /// A schema-relation atom `R(t₁, …, t_k)` with polynomial term
    /// arguments.
    Rel {
        /// Relation name (must match a schema symbol).
        name: String,
        /// Term arguments.
        args: Vec<MPoly>,
    },
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Natural (real) existential quantification.
    Exists(Vec<Var>, Box<Formula>),
    /// Natural (real) universal quantification.
    Forall(Vec<Var>, Box<Formula>),
    /// Active-domain existential quantification `∃x ∈ adom. φ`.
    ExistsAdom(Var, Box<Formula>),
    /// Active-domain universal quantification `∀x ∈ adom. φ`.
    ForallAdom(Var, Box<Formula>),
}

impl Formula {
    /// Conjunction of two formulas with `⊤`/`⊥` short-circuiting.
    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::False, _) | (_, Formula::False) => Formula::False,
            (Formula::True, g) => g,
            (f, Formula::True) => f,
            (Formula::And(mut fs), Formula::And(gs)) => {
                fs.extend(gs);
                Formula::And(fs)
            }
            (Formula::And(mut fs), g) => {
                fs.push(g);
                Formula::And(fs)
            }
            (f, Formula::And(mut gs)) => {
                gs.insert(0, f);
                Formula::And(gs)
            }
            (f, g) => Formula::And(vec![f, g]),
        }
    }

    /// Disjunction with `⊤`/`⊥` short-circuiting.
    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::True, _) | (_, Formula::True) => Formula::True,
            (Formula::False, g) => g,
            (f, Formula::False) => f,
            (Formula::Or(mut fs), Formula::Or(gs)) => {
                fs.extend(gs);
                Formula::Or(fs)
            }
            (Formula::Or(mut fs), g) => {
                fs.push(g);
                Formula::Or(fs)
            }
            (f, Formula::Or(mut gs)) => {
                gs.insert(0, f);
                Formula::Or(gs)
            }
            (f, g) => Formula::Or(vec![f, g]),
        }
    }

    /// Negation with double-negation and constant elimination.
    pub fn negate(self) -> Formula {
        match self {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(f) => *f,
            Formula::Atom(a) => Formula::Atom(Atom::new(a.poly, a.rel.negate())),
            f => Formula::Not(Box::new(f)),
        }
    }

    /// Implication `self → other`.
    pub fn implies(self, other: Formula) -> Formula {
        self.negate().or(other)
    }

    /// Existential quantification (over the reals), flattening nested blocks.
    pub fn exists(vars: Vec<Var>, body: Formula) -> Formula {
        if vars.is_empty() {
            return body;
        }
        match body {
            Formula::Exists(mut inner, b) => {
                let mut vs = vars;
                vs.append(&mut inner);
                Formula::Exists(vs, b)
            }
            b @ (Formula::True | Formula::False) => b,
            b => Formula::Exists(vars, Box::new(b)),
        }
    }

    /// Universal quantification (over the reals), flattening nested blocks.
    pub fn forall(vars: Vec<Var>, body: Formula) -> Formula {
        if vars.is_empty() {
            return body;
        }
        match body {
            Formula::Forall(mut inner, b) => {
                let mut vs = vars;
                vs.append(&mut inner);
                Formula::Forall(vs, b)
            }
            b @ (Formula::True | Formula::False) => b,
            b => Formula::Forall(vars, Box::new(b)),
        }
    }

    /// An equality atom `lhs = rhs`.
    pub fn eq(lhs: MPoly, rhs: MPoly) -> Formula {
        Formula::Atom(Atom::new(lhs - rhs, Rel::Eq))
    }

    /// A strict inequality `lhs < rhs`.
    pub fn lt(lhs: MPoly, rhs: MPoly) -> Formula {
        Formula::Atom(Atom::new(lhs - rhs, Rel::Lt))
    }

    /// A non-strict inequality `lhs ≤ rhs`.
    pub fn le(lhs: MPoly, rhs: MPoly) -> Formula {
        Formula::Atom(Atom::new(lhs - rhs, Rel::Le))
    }

    /// Free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut Vec::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut Vec<Var>, out: &mut BTreeSet<Var>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => {
                for v in a.poly.vars() {
                    if !bound.contains(&v) {
                        out.insert(v);
                    }
                }
            }
            Formula::Rel { args, .. } => {
                for t in args {
                    for v in t.vars() {
                        if !bound.contains(&v) {
                            out.insert(v);
                        }
                    }
                }
            }
            Formula::Not(f) => f.collect_free(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            Formula::Exists(vs, f) | Formula::Forall(vs, f) => {
                let n = bound.len();
                bound.extend_from_slice(vs);
                f.collect_free(bound, out);
                bound.truncate(n);
            }
            Formula::ExistsAdom(v, f) | Formula::ForallAdom(v, f) => {
                bound.push(*v);
                f.collect_free(bound, out);
                bound.pop();
            }
        }
    }

    /// All variables, free and bound.
    pub fn all_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| match f {
            Formula::Atom(a) => out.extend(a.poly.vars()),
            Formula::Rel { args, .. } => {
                for t in args {
                    out.extend(t.vars());
                }
            }
            Formula::Exists(vs, _) | Formula::Forall(vs, _) => out.extend(vs.iter().copied()),
            Formula::ExistsAdom(v, _) | Formula::ForallAdom(v, _) => {
                out.insert(*v);
            }
            _ => {}
        });
        out
    }

    /// The smallest variable index strictly greater than every variable in
    /// the formula — a source of fresh variables.
    pub fn fresh_var(&self) -> Var {
        Var(self.all_vars().iter().map(|v| v.0 + 1).max().unwrap_or(0))
    }

    /// Visits every subformula (pre-order).
    pub fn visit(&self, f: &mut dyn FnMut(&Formula)) {
        f(self);
        match self {
            Formula::Not(g) => g.visit(f),
            Formula::And(gs) | Formula::Or(gs) => {
                for g in gs {
                    g.visit(f);
                }
            }
            Formula::Exists(_, g)
            | Formula::Forall(_, g)
            | Formula::ExistsAdom(_, g)
            | Formula::ForallAdom(_, g) => g.visit(f),
            _ => {}
        }
    }

    /// `true` iff the formula contains no quantifier of any kind.
    pub fn is_quantifier_free(&self) -> bool {
        let mut qf = true;
        self.visit(&mut |f| {
            if matches!(
                f,
                Formula::Exists(..)
                    | Formula::Forall(..)
                    | Formula::ExistsAdom(..)
                    | Formula::ForallAdom(..)
            ) {
                qf = false;
            }
        });
        qf
    }

    /// `true` iff the formula mentions no schema relations (is a pure
    /// constraint formula over the reals).
    pub fn is_relation_free(&self) -> bool {
        let mut rf = true;
        self.visit(&mut |f| {
            if matches!(f, Formula::Rel { .. }) {
                rf = false;
            }
        });
        rf
    }

    /// Names of schema relations mentioned.
    pub fn relation_names(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |f| {
            if let Formula::Rel { name, .. } = f {
                out.insert(name.clone());
            }
        });
        out
    }

    /// The constraint class of the formula's real-arithmetic atoms
    /// (`DenseOrder ⊂ Linear ⊂ Polynomial`). Relation atoms don't count.
    pub fn class(&self) -> ConstraintClass {
        let mut class = ConstraintClass::DenseOrder;
        self.visit(&mut |f| {
            if let Formula::Atom(a) = f {
                let c = if !a.is_linear() {
                    ConstraintClass::Polynomial
                } else if is_order_atom(&a.poly) {
                    ConstraintClass::DenseOrder
                } else {
                    ConstraintClass::Linear
                };
                class = class.max(c);
            }
        });
        class
    }

    /// Substitutes variable `v` by a rational constant everywhere (free
    /// occurrences only).
    pub fn subst_rat(&self, v: Var, value: &Rat) -> Formula {
        self.map_polys(&|p: &MPoly| p.subst_rat(v, value), Some(v))
    }

    /// Substitutes variable `v` by a polynomial term (free occurrences only).
    ///
    /// The caller must ensure the term's variables are not captured by any
    /// quantifier in the formula (use fresh variables for bound positions;
    /// our normal-form passes guarantee this).
    pub fn subst_poly(&self, v: Var, term: &MPoly) -> Formula {
        self.map_polys(&|p: &MPoly| p.subst_poly(v, term), Some(v))
    }

    /// Applies `f` to every polynomial in the formula. If `shadow` is set,
    /// the transformation is not applied under quantifiers binding that
    /// variable.
    pub fn map_polys(&self, f: &dyn Fn(&MPoly) -> MPoly, shadow: Option<Var>) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => {
                let p = f(&a.poly);
                let atom = Atom::new(p, a.rel);
                match atom.as_const() {
                    Some(true) => Formula::True,
                    Some(false) => Formula::False,
                    None => Formula::Atom(atom),
                }
            }
            Formula::Rel { name, args } => Formula::Rel {
                name: name.clone(),
                args: args.iter().map(f).collect(),
            },
            Formula::Not(g) => g.map_polys(f, shadow).negate(),
            Formula::And(gs) => gs
                .iter()
                .map(|g| g.map_polys(f, shadow))
                .fold(Formula::True, Formula::and),
            Formula::Or(gs) => gs
                .iter()
                .map(|g| g.map_polys(f, shadow))
                .fold(Formula::False, Formula::or),
            Formula::Exists(vs, g) => {
                if shadow.is_some_and(|v| vs.contains(&v)) {
                    self.clone()
                } else {
                    Formula::exists(vs.clone(), g.map_polys(f, shadow))
                }
            }
            Formula::Forall(vs, g) => {
                if shadow.is_some_and(|v| vs.contains(&v)) {
                    self.clone()
                } else {
                    Formula::forall(vs.clone(), g.map_polys(f, shadow))
                }
            }
            Formula::ExistsAdom(v, g) => {
                if shadow == Some(*v) {
                    self.clone()
                } else {
                    Formula::ExistsAdom(*v, Box::new(g.map_polys(f, shadow)))
                }
            }
            Formula::ForallAdom(v, g) => {
                if shadow == Some(*v) {
                    self.clone()
                } else {
                    Formula::ForallAdom(*v, Box::new(g.map_polys(f, shadow)))
                }
            }
        }
    }

    /// Evaluates a formula with no schema relations at a total assignment.
    /// Natural quantifiers are *not* supported (they require quantifier
    /// elimination — see `cqa-qe`); active-domain quantifiers range over
    /// `adom`.
    ///
    /// Returns `None` if the formula contains a natural quantifier or a
    /// schema relation.
    pub fn eval(&self, assignment: &dyn Fn(Var) -> Rat, adom: &[Rat]) -> Option<bool> {
        match self {
            Formula::True => Some(true),
            Formula::False => Some(false),
            Formula::Atom(a) => Some(a.eval(assignment)),
            Formula::Rel { .. } => None,
            Formula::Not(f) => f.eval(assignment, adom).map(|b| !b),
            Formula::And(fs) => {
                for f in fs {
                    if !f.eval(assignment, adom)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
            Formula::Or(fs) => {
                for f in fs {
                    if f.eval(assignment, adom)? {
                        return Some(true);
                    }
                }
                Some(false)
            }
            Formula::Exists(..) | Formula::Forall(..) => None,
            Formula::ExistsAdom(v, f) => {
                for a in adom {
                    let g = f.subst_rat(*v, a);
                    if g.eval(assignment, adom)? {
                        return Some(true);
                    }
                }
                Some(false)
            }
            Formula::ForallAdom(v, f) => {
                for a in adom {
                    let g = f.subst_rat(*v, a);
                    if !g.eval(assignment, adom)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
        }
    }

    /// Counts atomic subformulas (both kinds).
    pub fn atom_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |f| {
            if matches!(f, Formula::Atom(_) | Formula::Rel { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Counts quantified variables (with multiplicity).
    pub fn quantifier_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |f| match f {
            Formula::Exists(vs, _) | Formula::Forall(vs, _) => n += vs.len(),
            Formula::ExistsAdom(..) | Formula::ForallAdom(..) => n += 1,
            _ => {}
        });
        n
    }
}

/// `true` iff the polynomial is of the dense-order shape: `x - y` or
/// `x - c` / `c - x` or a constant, i.e. expressible over `⟨ℝ, <⟩` with
/// rational parameters.
pub(crate) fn is_order_atom(p: &MPoly) -> bool {
    if !p.is_affine() {
        return false;
    }
    let mut var_coeffs = 0usize;
    let mut ok = true;
    let mut signs = Vec::new();
    for (m, c) in p.terms() {
        if m.is_empty() {
            continue;
        }
        var_coeffs += 1;
        if c.abs().is_one() {
            signs.push(c.signum());
        } else {
            ok = false;
        }
    }
    match var_coeffs {
        0 | 1 => ok,
        2 => ok && signs.iter().sum::<i32>() == 0,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;

    fn x() -> MPoly {
        MPoly::var(Var(0))
    }
    fn y() -> MPoly {
        MPoly::var(Var(1))
    }

    #[test]
    fn connective_simplification() {
        assert_eq!(Formula::True.and(Formula::False), Formula::False);
        assert_eq!(Formula::True.or(Formula::False), Formula::True);
        assert_eq!(Formula::False.or(Formula::False), Formula::False);
        assert_eq!(Formula::True.negate(), Formula::False);
        let a = Formula::lt(x(), y());
        assert_eq!(a.clone().and(Formula::True), a);
        assert_eq!(a.clone().negate().negate(), a);
    }

    #[test]
    fn atom_negation_flips_relation() {
        let a = Formula::lt(x(), y()); // x - y < 0
        match a.negate() {
            Formula::Atom(at) => assert_eq!(at.rel, Rel::Ge),
            other => panic!("expected atom, got {other:?}"),
        }
    }

    #[test]
    fn free_vars_respect_binding() {
        // ∃y. x < y  — free: {x}
        let f = Formula::exists(vec![Var(1)], Formula::lt(x(), y()));
        let fv = f.free_vars();
        assert!(fv.contains(&Var(0)));
        assert!(!fv.contains(&Var(1)));
        assert_eq!(f.fresh_var(), Var(2));
    }

    #[test]
    fn quantifier_flattening() {
        let f = Formula::exists(
            vec![Var(0)],
            Formula::exists(vec![Var(1)], Formula::lt(x(), y())),
        );
        match f {
            Formula::Exists(vs, _) => assert_eq!(vs, vec![Var(0), Var(1)]),
            other => panic!("expected flattened exists, got {other:?}"),
        }
    }

    #[test]
    fn subst_rat_decides_ground_atoms() {
        // x < 1 with x := 0 becomes True
        let f = Formula::lt(x(), MPoly::one());
        assert_eq!(f.subst_rat(Var(0), &rat(0, 1)), Formula::True);
        assert_eq!(f.subst_rat(Var(0), &rat(2, 1)), Formula::False);
    }

    #[test]
    fn subst_does_not_touch_bound() {
        let f = Formula::exists(vec![Var(0)], Formula::lt(x(), y()));
        let g = f.subst_rat(Var(0), &rat(5, 1));
        assert_eq!(g, f);
    }

    #[test]
    fn eval_quantifier_free() {
        // x < y & y <= 1
        let f = Formula::lt(x(), y()).and(Formula::le(y(), MPoly::one()));
        let at = |vals: [i64; 2]| move |v: Var| rat(vals[v.0 as usize], 1);
        assert_eq!(f.eval(&at([0, 1]), &[]), Some(true));
        assert_eq!(f.eval(&at([1, 0]), &[]), Some(false));
        assert_eq!(f.eval(&at([0, 2]), &[]), Some(false));
    }

    #[test]
    fn eval_active_domain_quantifiers() {
        // ∃u ∈ adom. x < u
        let f = Formula::ExistsAdom(Var(1), Box::new(Formula::lt(x(), y())));
        let adom = [rat(1, 1), rat(3, 1)];
        let at = |xv: i64| {
            move |v: Var| {
                if v == Var(0) {
                    rat(xv, 1)
                } else {
                    unreachable!()
                }
            }
        };
        assert_eq!(f.eval(&at(2), &adom), Some(true));
        assert_eq!(f.eval(&at(5), &adom), Some(false));
        // ∀u ∈ adom. x < u
        let g = Formula::ForallAdom(Var(1), Box::new(Formula::lt(x(), y())));
        assert_eq!(g.eval(&at(0), &adom), Some(true));
        assert_eq!(g.eval(&at(2), &adom), Some(false));
    }

    #[test]
    fn eval_short_circuits_connectives() {
        // A satisfied Or must not evaluate a later operand whose own
        // evaluation would be None (here: a schema relation).
        let none = Formula::Rel {
            name: "R".into(),
            args: vec![x()],
        };
        let sat_or = Formula::Or(vec![Formula::True, none.clone()]);
        assert_eq!(sat_or.eval(&|_| rat(0, 1), &[]), Some(true));
        // Dually, a refuted And ignores a later unevaluable operand.
        let unsat_and = Formula::And(vec![Formula::False, none.clone()]);
        assert_eq!(unsat_and.eval(&|_| rat(0, 1), &[]), Some(false));
        // But when the earlier operands don't decide it, None still surfaces.
        let undecided = Formula::Or(vec![Formula::False, none]);
        assert_eq!(undecided.eval(&|_| rat(0, 1), &[]), None);
    }

    #[test]
    fn eval_rejects_natural_quantifier() {
        let f = Formula::exists(vec![Var(0)], Formula::lt(x(), MPoly::one()));
        assert_eq!(f.eval(&|_| rat(0, 1), &[]), None);
    }

    #[test]
    fn constraint_class_detection() {
        let order = Formula::lt(x(), y());
        assert_eq!(order.class(), ConstraintClass::DenseOrder);
        let lin = Formula::lt(x().scale(&rat(2, 1)), y());
        assert_eq!(lin.class(), ConstraintClass::Linear);
        let poly = Formula::lt(x().pow(2), y());
        assert_eq!(poly.class(), ConstraintClass::Polynomial);
        // x + y < 0 is linear but not order (same-sign coefficients)
        let sum = Formula::lt(x() + y(), MPoly::zero());
        assert_eq!(sum.class(), ConstraintClass::Linear);
    }

    #[test]
    fn relation_atoms() {
        let f = Formula::Rel {
            name: "S".into(),
            args: vec![x(), y()],
        }
        .and(Formula::lt(x(), y()));
        assert!(!f.is_relation_free());
        assert_eq!(
            f.relation_names().into_iter().collect::<Vec<_>>(),
            vec!["S".to_string()]
        );
        assert_eq!(f.atom_count(), 2);
    }

    #[test]
    fn counting() {
        let f = Formula::exists(
            vec![Var(0), Var(1)],
            Formula::lt(x(), y()).or(Formula::eq(x(), y())),
        );
        assert_eq!(f.quantifier_count(), 2);
        assert_eq!(f.atom_count(), 2);
        assert!(!f.is_quantifier_free());
        assert!(Formula::lt(x(), y()).is_quantifier_free());
    }
}
