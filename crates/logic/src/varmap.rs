//! Interning of human-readable variable names.

use cqa_poly::Var;
use std::collections::HashMap;

/// A bidirectional mapping between variable names and [`Var`] indices.
///
/// The parser interns identifiers here; printers look names back up. Fresh
/// variables created during normalization get synthetic `_k` names on
/// demand.
#[derive(Clone, Debug, Default)]
pub struct VarMap {
    names: Vec<String>,
    index: HashMap<String, Var>,
}

impl VarMap {
    /// An empty map.
    pub fn new() -> VarMap {
        VarMap::default()
    }

    /// Interns `name`, returning its variable (existing or newly assigned).
    pub fn intern(&mut self, name: &str) -> Var {
        if let Some(&v) = self.index.get(name) {
            return v;
        }
        let v = Var(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), v);
        v
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Var> {
        self.index.get(name).copied()
    }

    /// The name of `v`, or a synthetic `x{n}` fallback for variables created
    /// outside this map.
    pub fn name(&self, v: Var) -> String {
        self.names
            .get(v.0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("x{}", v.0))
    }

    /// Creates a fresh variable with a derived name.
    pub fn fresh(&mut self, hint: &str) -> Var {
        let mut k = self.names.len();
        loop {
            let candidate = format!("{hint}{k}");
            if !self.index.contains_key(&candidate) {
                return self.intern(&candidate);
            }
            k += 1;
        }
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` iff no variables are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut m = VarMap::new();
        let x = m.intern("x");
        let y = m.intern("y");
        assert_ne!(x, y);
        assert_eq!(m.intern("x"), x);
        assert_eq!(m.name(x), "x");
        assert_eq!(m.get("y"), Some(y));
        assert_eq!(m.get("z"), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn fresh_avoids_collisions() {
        let mut m = VarMap::new();
        m.intern("t2");
        let f = m.fresh("t");
        assert_ne!(m.name(f), "t2");
        assert!(m.get(&m.name(f)).is_some());
    }

    #[test]
    fn fallback_name() {
        let m = VarMap::new();
        assert_eq!(m.name(Var(7)), "x7");
    }
}
