//! Byte-span source locations for parsed formulas.
//!
//! The plain [`Formula`] AST applies simplifying smart constructors while it
//! is built (constant folding, quantifier-block flattening, double-negation
//! elimination), which is exactly right for the QE and evaluation engines —
//! and exactly wrong for a static analyzer, which must point at the source
//! text the user wrote. [`SpannedFormula`] is the faithful parse tree: one
//! node per syntactic construct, each carrying the byte [`Span`] it was
//! parsed from. [`SpannedFormula::to_formula`] lowers to the plain AST via
//! the same smart constructors the non-spanned parser entry points use, so
//! the two views are guaranteed to agree.

use crate::ast::{Atom, Formula};
use cqa_poly::{MPoly, Var};

/// A half-open byte range `[start, end)` into the source text.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct Span {
    /// First byte of the spanned text.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both operands.
    pub fn join(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The span moved right by `delta` bytes (for formulas embedded in a
    /// larger source file).
    pub fn shift(self, delta: usize) -> Span {
        Span {
            start: self.start + delta,
            end: self.end + delta,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// `true` iff the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// A quantifier-bound variable together with the span of its binder
/// occurrence.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundVar {
    /// The bound variable.
    pub var: Var,
    /// Span of the variable name at the binder.
    pub span: Span,
}

/// A formula parse tree with byte spans on every node. Mirrors [`Formula`]
/// structurally but performs no simplification.
#[derive(Clone, Debug, PartialEq)]
pub struct SpannedFormula {
    /// The node itself.
    pub node: SpannedNode,
    /// The source bytes this node was parsed from.
    pub span: Span,
}

/// The node alternatives of a [`SpannedFormula`].
#[derive(Clone, Debug, PartialEq)]
pub enum SpannedNode {
    /// `true`.
    True,
    /// `false`.
    False,
    /// A sign-condition atom.
    Atom(Atom),
    /// A schema-relation atom `R(t₁, …, t_k)`.
    Rel {
        /// Relation name.
        name: String,
        /// Term arguments.
        args: Vec<MPoly>,
        /// Span of the relation name alone.
        name_span: Span,
    },
    /// Negation.
    Not(Box<SpannedFormula>),
    /// Conjunction.
    And(Vec<SpannedFormula>),
    /// Disjunction.
    Or(Vec<SpannedFormula>),
    /// Natural existential quantification.
    Exists(Vec<BoundVar>, Box<SpannedFormula>),
    /// Natural universal quantification.
    Forall(Vec<BoundVar>, Box<SpannedFormula>),
    /// Active-domain existential quantification.
    ExistsAdom(BoundVar, Box<SpannedFormula>),
    /// Active-domain universal quantification.
    ForallAdom(BoundVar, Box<SpannedFormula>),
}

impl SpannedFormula {
    /// Lowers to the plain [`Formula`] AST using the same simplifying smart
    /// constructors as [`parse_formula_with`](crate::parse_formula_with), so
    /// `parse_formula_spanned(src).to_formula()` equals
    /// `parse_formula_with(src)`.
    pub fn to_formula(&self) -> Formula {
        match &self.node {
            SpannedNode::True => Formula::True,
            SpannedNode::False => Formula::False,
            SpannedNode::Atom(a) => Formula::Atom(a.clone()),
            SpannedNode::Rel { name, args, .. } => Formula::Rel {
                name: name.clone(),
                args: args.clone(),
            },
            SpannedNode::Not(g) => g.to_formula().negate(),
            SpannedNode::And(gs) => gs
                .iter()
                .map(SpannedFormula::to_formula)
                .fold(Formula::True, Formula::and),
            SpannedNode::Or(gs) => gs
                .iter()
                .map(SpannedFormula::to_formula)
                .fold(Formula::False, Formula::or),
            SpannedNode::Exists(vs, g) => {
                Formula::exists(vs.iter().map(|b| b.var).collect(), g.to_formula())
            }
            SpannedNode::Forall(vs, g) => {
                Formula::forall(vs.iter().map(|b| b.var).collect(), g.to_formula())
            }
            SpannedNode::ExistsAdom(v, g) => Formula::ExistsAdom(v.var, Box::new(g.to_formula())),
            SpannedNode::ForallAdom(v, g) => Formula::ForallAdom(v.var, Box::new(g.to_formula())),
        }
    }

    /// Negation mirroring [`Formula::negate`]: flips atoms, unwraps double
    /// negations, swaps the constants — keeping spans intact.
    pub fn negate(self) -> SpannedFormula {
        let span = self.span;
        let node = match self.node {
            SpannedNode::True => SpannedNode::False,
            SpannedNode::False => SpannedNode::True,
            SpannedNode::Not(g) => return *g,
            SpannedNode::Atom(a) => SpannedNode::Atom(Atom::new(a.poly, a.rel.negate())),
            node => SpannedNode::Not(Box::new(SpannedFormula { node, span })),
        };
        SpannedFormula { node, span }
    }

    /// Implication `self → other` (desugared as `¬self ∨ other`), spanning
    /// `span`.
    pub fn implies(self, other: SpannedFormula, span: Span) -> SpannedFormula {
        SpannedFormula {
            node: SpannedNode::Or(vec![self.negate(), other]),
            span,
        }
    }

    /// Moves every span in the tree right by `delta` bytes (for formulas
    /// parsed out of a slice of a larger file).
    pub fn shift(&mut self, delta: usize) {
        self.span = self.span.shift(delta);
        match &mut self.node {
            SpannedNode::True | SpannedNode::False | SpannedNode::Atom(_) => {}
            SpannedNode::Rel { name_span, .. } => *name_span = name_span.shift(delta),
            SpannedNode::Not(g) => g.shift(delta),
            SpannedNode::And(gs) | SpannedNode::Or(gs) => {
                for g in gs {
                    g.shift(delta);
                }
            }
            SpannedNode::Exists(vs, g) | SpannedNode::Forall(vs, g) => {
                for v in vs {
                    v.span = v.span.shift(delta);
                }
                g.shift(delta);
            }
            SpannedNode::ExistsAdom(v, g) | SpannedNode::ForallAdom(v, g) => {
                v.span = v.span.shift(delta);
                g.shift(delta);
            }
        }
    }

    /// Visits every node (pre-order).
    pub fn visit(&self, f: &mut dyn FnMut(&SpannedFormula)) {
        f(self);
        match &self.node {
            SpannedNode::Not(g) => g.visit(f),
            SpannedNode::And(gs) | SpannedNode::Or(gs) => {
                for g in gs {
                    g.visit(f);
                }
            }
            SpannedNode::Exists(_, g)
            | SpannedNode::Forall(_, g)
            | SpannedNode::ExistsAdom(_, g)
            | SpannedNode::ForallAdom(_, g) => g.visit(f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_algebra() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.join(b), Span::new(2, 9));
        assert_eq!(a.shift(10), Span::new(12, 15));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span::new(3, 3).is_empty());
    }
}
