//! Property tests for the batched (structure-of-arrays) kernel: on
//! random quantifier-free formulas and random batches of dyadic points,
//! [`CompiledMatrix::eval_batch`] must agree bit-for-bit, lane by lane,
//! with the per-point [`CompiledMatrix::eval_f64`] / `eval_rats` path —
//! including at sign-boundary points engineered to defeat the certified
//! `f64` sweep and force the per-lane exact fallback, and regardless of
//! how the lanes are split into sub-batches.

use cqa_arith::{rat, Rat};
use cqa_logic::{rat_to_f64_err, Atom, Batch, BatchScratch, CompiledMatrix, Formula, Rel, SlotMap};
use cqa_poly::{MPoly, Var};
use proptest::collection::vec;
use proptest::prelude::*;

const VARS: [Var; 3] = [Var(0), Var(1), Var(2)];

fn rel_of(i: u8) -> Rel {
    match i % 6 {
        0 => Rel::Eq,
        1 => Rel::Neq,
        2 => Rel::Lt,
        3 => Rel::Le,
        4 => Rel::Gt,
        _ => Rel::Ge,
    }
}

/// A polynomial from `(coefficient, exponents-per-variable)` terms.
fn poly_from(terms: &[(i64, [u8; 3])]) -> MPoly {
    let mut p = MPoly::zero();
    for (c, es) in terms {
        let mut t = MPoly::constant(rat(*c, 1));
        for (v, &e) in VARS.iter().zip(es) {
            if e > 0 {
                t = &t * &MPoly::var(*v).pow(e as u32);
            }
        }
        p = &p + &t;
    }
    p
}

/// A random affine polynomial — exercises the degree-1 dot-product
/// specialization of the batch sweep.
fn linear_poly() -> impl Strategy<Value = MPoly> {
    (-255i64..=255, -255i64..=255, -255i64..=255, -255i64..=255).prop_map(|(c0, c1, c2, c3)| {
        poly_from(&[
            (c0, [0, 0, 0]),
            (c1, [1, 0, 0]),
            (c2, [0, 1, 0]),
            (c3, [0, 0, 1]),
        ])
    })
}

/// A random polynomial: up to 4 terms, per-variable degree ≤ 2.
fn poly() -> impl Strategy<Value = MPoly> {
    vec((-255i64..=255, (0u8..=2, 0u8..=2, 0u8..=2)), 1..=4).prop_map(|ts| {
        poly_from(
            &ts.iter()
                .map(|&(c, (a, b, d))| (c, [a, b, d]))
                .collect::<Vec<_>>(),
        )
    })
}

/// A random quantifier-free, relation-free formula over `VARS`.
fn formula(atom_poly: BoxedStrategy<MPoly>) -> BoxedStrategy<Formula> {
    let atom = (atom_poly, 0u8..6)
        .prop_map(|(p, r)| Formula::Atom(Atom::new(p, rel_of(r))))
        .boxed();
    let leaf = prop_oneof![atom, Just(Formula::True), Just(Formula::False)];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| Formula::Not(Box::new(f))),
            vec(inner.clone(), 1..=3).prop_map(Formula::And),
            vec(inner, 1..=3).prop_map(Formula::Or),
        ]
    })
}

/// A random dyadic point: each coordinate `m / 2ˢ`, `|m| ≤ 255`, `s ≤ 4`.
/// Dyadics of this size convert to `f64` exactly, so the batch columns
/// carry zero conversion error and any lane disagreement is a kernel bug.
fn dyadic_point() -> impl Strategy<Value = Vec<Rat>> {
    vec((-255i64..=255, 0u32..=4), 3..=3)
        .prop_map(|cs| cs.into_iter().map(|(m, s)| rat(m, 1i64 << s)).collect())
}

/// Loads `points` (one per lane) into a fresh 3-slot batch.
fn load_batch(points: &[Vec<Rat>]) -> Batch {
    let mut batch = Batch::new(VARS.len());
    batch.set_len(points.len());
    for slot in 0..VARS.len() {
        let col: Vec<Rat> = points.iter().map(|p| p[slot].clone()).collect();
        batch.set_col_rats(slot, &col);
    }
    batch
}

/// The per-point oracle for one lane: `eval_rats`, cross-checked against
/// `eval_f64` on the same data the batch sees.
fn per_point_oracle(kernel: &CompiledMatrix, point: &[Rat]) -> Result<bool, TestCaseError> {
    let oracle = kernel.eval_rats(point);
    let mut floats = vec![0.0f64; VARS.len()];
    let mut errs = vec![0.0f64; VARS.len()];
    for (i, r) in point.iter().enumerate() {
        (floats[i], errs[i]) = rat_to_f64_err(r);
    }
    let exact = |s: usize| point[s].clone();
    prop_assert_eq!(
        kernel.eval_f64(&floats, &errs, &exact),
        oracle,
        "eval_f64 vs eval_rats at {:?}",
        point
    );
    Ok(oracle)
}

/// Checks every lane of `eval_batch` against the per-point path, then
/// re-checks that splitting the same lanes into sub-batches of `chunk`
/// lanes decides each lane identically.
fn check_batch_parity(f: &Formula, points: &[Vec<Rat>], chunk: usize) -> Result<(), TestCaseError> {
    let slots = SlotMap::from_vars(&VARS);
    let kernel = CompiledMatrix::compile(f, &slots).expect("QF relation-free formula compiles");
    let mut scratch = BatchScratch::new();

    let batch = load_batch(points);
    let exact = |lane: usize, slot: usize| points[lane][slot].clone();
    let whole = kernel.eval_batch(&batch, &exact, &mut scratch);
    prop_assert_eq!(
        whole.fast_lanes + whole.exact_lanes,
        points.len(),
        "every lane is accounted for"
    );

    let mut oracle = Vec::with_capacity(points.len());
    for (lane, point) in points.iter().enumerate() {
        let want = per_point_oracle(&kernel, point)?;
        prop_assert_eq!(
            whole.mask.get(lane),
            want,
            "lane {} of {:?} disagrees with per-point eval",
            lane,
            point
        );
        oracle.push(want);
    }

    // Sub-batch identity: the same scratch, reused across chunks of any
    // size, must decide each lane exactly as the single whole-batch call.
    for (c, block) in points.chunks(chunk).enumerate() {
        let sub = load_batch(block);
        let base = c * chunk;
        let sub_exact = |lane: usize, slot: usize| points[base + lane][slot].clone();
        let r = kernel.eval_batch(&sub, &sub_exact, &mut scratch);
        for lane in 0..block.len() {
            prop_assert_eq!(
                r.mask.get(lane),
                oracle[base + lane],
                "chunked lane {} (chunk size {}) disagrees",
                base + lane,
                chunk
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn linear_batches_match_per_point_eval(
        f in formula(linear_poly().boxed()),
        points in vec(dyadic_point(), 1..=12),
        chunk in 1usize..=5,
    ) {
        check_batch_parity(&f, &points, chunk)?;
    }

    #[test]
    fn polynomial_batches_match_per_point_eval(
        f in formula(poly().boxed()),
        points in vec(dyadic_point(), 1..=12),
        chunk in 1usize..=5,
    ) {
        check_batch_parity(&f, &points, chunk)?;
    }

    /// Forced-fallback stress: shift a random polynomial by its own value
    /// at one of the batch points, so `p − p(pt)` is exactly zero in that
    /// lane. The certified sweep can never certify sign 0 with a nonzero
    /// error column, so that lane must take the exact fallback — and every
    /// lane must still agree with the per-point path.
    #[test]
    fn boundary_lanes_fall_back_and_agree(
        p in poly(),
        points in vec(dyadic_point(), 1..=8),
        pick in 0usize..64,
        r in 0u8..6,
        chunk in 1usize..=5,
    ) {
        let slots = SlotMap::from_vars(&VARS);
        let pt = &points[pick % points.len()];
        let value = p.eval(&slots.assignment(pt));
        let shifted = &p - &MPoly::constant(value);
        let f = Formula::Atom(Atom::new(shifted, rel_of(r)));

        let kernel = CompiledMatrix::compile(&f, &slots).expect("atom compiles");
        let batch = load_batch(&points);
        let exact = |lane: usize, slot: usize| points[lane][slot].clone();
        let mut scratch = BatchScratch::new();
        let res = kernel.eval_batch(&batch, &exact, &mut scratch);
        // The zero-valued lane is uncertifiable unless the whole shifted
        // polynomial canonicalized away (then every lane is trivially
        // decided by the empty sweep).
        if kernel.atom_count() > 0 {
            prop_assert!(
                res.exact_lanes >= 1,
                "boundary lane should take the exact fallback"
            );
        }
        check_batch_parity(&f, &points, chunk)?;
    }

    /// Inexact broadcast columns (e.g. a parameter like 1/3 whose `f64`
    /// conversion carries error) must route through the guarded sweep and
    /// still match the per-point path lane for lane.
    #[test]
    fn inexact_columns_take_guarded_sweep_and_agree(
        f in formula(linear_poly().boxed()),
        points in vec(dyadic_point(), 1..=8),
        num in -20i64..=20,
    ) {
        // Replace slot 0 with `num/3` everywhere: a non-dyadic rational,
        // so its column carries a nonzero conversion-error bound.
        let third = rat(num, 3);
        let points: Vec<Vec<Rat>> = points
            .into_iter()
            .map(|mut p| {
                p[0] = third.clone();
                p
            })
            .collect();
        check_batch_parity(&f, &points, points.len())?;
    }
}
