//! Property tests: normal forms preserve semantics; the printer round-trips.

use cqa_arith::{rat, Rat};
use cqa_logic::{
    display_formula, dnf, from_dnf, nnf, parse_formula_with, prenex, Atom, Formula, Rel, VarMap,
};
use cqa_poly::{MPoly, Var};
use proptest::prelude::*;

fn qf_formula() -> impl Strategy<Value = Formula> {
    let atom =
        (prop::collection::vec(-3i64..=3, 2), -4i64..=4, 0usize..6).prop_map(|(coeffs, c, r)| {
            let rel = [Rel::Lt, Rel::Le, Rel::Gt, Rel::Ge, Rel::Eq, Rel::Neq][r];
            let mut p = MPoly::constant(Rat::from(c));
            for (i, &a) in coeffs.iter().enumerate() {
                p = p + MPoly::var(Var(i as u32)).scale(&Rat::from(a));
            }
            Formula::Atom(Atom::new(p, rel))
        });
    atom.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Formula::negate),
        ]
    })
}

fn agree(a: &Formula, b: &Formula) -> Result<(), TestCaseError> {
    for x in -3..=3i64 {
        for y in -3..=3i64 {
            let asg = |v: Var| if v == Var(0) { rat(x, 2) } else { rat(y, 2) };
            prop_assert_eq!(a.eval(&asg, &[]), b.eval(&asg, &[]), "at ({}, {})", x, y);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nnf_preserves_semantics(f in qf_formula()) {
        agree(&f, &nnf(&f))?;
    }

    #[test]
    fn dnf_preserves_semantics(f in qf_formula()) {
        let clauses = dnf(&f);
        agree(&f, &from_dnf(&clauses))?;
    }

    #[test]
    fn double_negation_is_identity_semantically(f in qf_formula()) {
        agree(&f, &f.clone().negate().negate())?;
    }

    #[test]
    fn printer_round_trips(f in qf_formula()) {
        let vars = VarMap::new();
        let printed = display_formula(&f, &vars);
        let mut vars2 = VarMap::new();
        // Intern x0, x1 in the same order the fallback names use.
        vars2.intern("x0");
        vars2.intern("x1");
        let reparsed = parse_formula_with(&printed, &mut vars2).unwrap();
        agree(&f, &reparsed)?;
    }

    #[test]
    fn prenex_matrix_is_quantifier_free(f in qf_formula()) {
        let q = Formula::exists(vec![Var(1)], f.clone());
        let (blocks, matrix) = prenex(&q);
        prop_assert!(matrix.is_quantifier_free());
        prop_assert!(blocks.len() <= 1);
        // Prefix variables are disjoint from free variables.
        let fv = matrix.free_vars();
        for b in &blocks {
            for v in &b.vars {
                // A renamed bound variable may occur in the matrix but not
                // collide with an original free variable index 0.
                prop_assert!(*v != Var(0) || !fv.contains(&Var(0)) || b.vars.is_empty());
            }
        }
    }
}
