//! Property tests for the compiled evaluation kernel: on random
//! quantifier-free formulas and random dyadic points,
//! [`CompiledMatrix::eval_f64`] and [`CompiledMatrix::eval_rats`] must
//! agree exactly with the tree-walking interpreter [`Formula::eval`] —
//! including at sign-boundary points engineered to defeat the `f64` fast
//! path and force the exact rational fallback.

use cqa_arith::{rat, Rat};
use cqa_logic::{rat_to_f64_err, Atom, CompiledMatrix, Formula, Rel, SlotMap};
use cqa_poly::{MPoly, Var};
use proptest::collection::vec;
use proptest::prelude::*;

const VARS: [Var; 3] = [Var(0), Var(1), Var(2)];

fn rel_of(i: u8) -> Rel {
    match i % 6 {
        0 => Rel::Eq,
        1 => Rel::Neq,
        2 => Rel::Lt,
        3 => Rel::Le,
        4 => Rel::Gt,
        _ => Rel::Ge,
    }
}

/// A polynomial from `(coefficient, exponents-per-variable)` terms.
fn poly_from(terms: &[(i64, [u8; 3])]) -> MPoly {
    let mut p = MPoly::zero();
    for (c, es) in terms {
        let mut t = MPoly::constant(rat(*c, 1));
        for (v, &e) in VARS.iter().zip(es) {
            if e > 0 {
                t = &t * &MPoly::var(*v).pow(e as u32);
            }
        }
        p = &p + &t;
    }
    p
}

/// A random affine polynomial `c₀ + c₁x + c₂y + c₃z`.
fn linear_poly() -> impl Strategy<Value = MPoly> {
    (-255i64..=255, -255i64..=255, -255i64..=255, -255i64..=255).prop_map(|(c0, c1, c2, c3)| {
        poly_from(&[
            (c0, [0, 0, 0]),
            (c1, [1, 0, 0]),
            (c2, [0, 1, 0]),
            (c3, [0, 0, 1]),
        ])
    })
}

/// A random polynomial: up to 4 terms, per-variable degree ≤ 2.
fn poly() -> impl Strategy<Value = MPoly> {
    vec((-255i64..=255, (0u8..=2, 0u8..=2, 0u8..=2)), 1..=4).prop_map(|ts| {
        poly_from(
            &ts.iter()
                .map(|&(c, (a, b, d))| (c, [a, b, d]))
                .collect::<Vec<_>>(),
        )
    })
}

/// A random quantifier-free, relation-free formula over `VARS`.
fn formula(atom_poly: BoxedStrategy<MPoly>) -> BoxedStrategy<Formula> {
    let atom = (atom_poly, 0u8..6)
        .prop_map(|(p, r)| Formula::Atom(Atom::new(p, rel_of(r))))
        .boxed();
    let leaf = prop_oneof![atom, Just(Formula::True), Just(Formula::False)];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| Formula::Not(Box::new(f))),
            vec(inner.clone(), 1..=3).prop_map(Formula::And),
            vec(inner, 1..=3).prop_map(Formula::Or),
        ]
    })
}

/// A random dyadic point: each coordinate `m / 2ˢ`, `|m| ≤ 255`, `s ≤ 4`.
/// Dyadics of this size convert to `f64` exactly, so the kernel's
/// conversion error is zero and any disagreement is a kernel bug.
fn dyadic_point() -> impl Strategy<Value = Vec<Rat>> {
    vec((-255i64..=255, 0u32..=4), 3..=3)
        .prop_map(|cs| cs.into_iter().map(|(m, s)| rat(m, 1i64 << s)).collect())
}

fn check_parity(f: &Formula, point: &[Rat]) -> Result<(), TestCaseError> {
    let slots = SlotMap::from_vars(&VARS);
    let kernel = CompiledMatrix::compile(f, &slots).expect("QF relation-free formula compiles");
    let oracle = f
        .eval(&slots.assignment(point), &[])
        .expect("total assignment decides");

    prop_assert_eq!(kernel.eval_rats(point), oracle, "eval_rats vs interpreter");

    let mut floats = vec![0.0f64; 3];
    let mut errs = vec![0.0f64; 3];
    for (i, r) in point.iter().enumerate() {
        (floats[i], errs[i]) = rat_to_f64_err(r);
        prop_assert_eq!(errs[i], 0.0, "dyadic test points convert exactly");
    }
    let exact = |s: usize| point[s].clone();
    prop_assert_eq!(
        kernel.eval_f64(&floats, &errs, &exact),
        oracle,
        "eval_f64 vs interpreter"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn linear_formulas_agree_with_interpreter(
        f in formula(linear_poly().boxed()),
        point in dyadic_point(),
    ) {
        check_parity(&f, &point)?;
    }

    #[test]
    fn polynomial_formulas_agree_with_interpreter(
        f in formula(poly().boxed()),
        point in dyadic_point(),
    ) {
        check_parity(&f, &point)?;
    }

    /// Sign-boundary stress: shift a random polynomial by its own value at
    /// the test point, so `p − p(pt)` is exactly zero there. The `f64`
    /// path cannot certify a zero sum with a nonzero error bound, so these
    /// cases exercise the exact fallback; parity must still hold for every
    /// relation.
    #[test]
    fn boundary_points_agree_via_exact_fallback(
        p in poly(),
        point in dyadic_point(),
        r in 0u8..6,
    ) {
        let slots = SlotMap::from_vars(&VARS);
        let value = p.eval(&slots.assignment(&point));
        let shifted = &p - &MPoly::constant(value);
        let f = Formula::Atom(Atom::new(shifted, rel_of(r)));
        // The shifted polynomial is zero at `point`, so only the relations
        // satisfied by sign 0 hold.
        let expect = rel_of(r).sign_satisfies(0);
        prop_assert_eq!(f.eval(&slots.assignment(&point), &[]), Some(expect));
        check_parity(&f, &point)?;
    }
}
