//! Offline stand-in for the slice of `criterion` this workspace's benches
//! use: `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input, finish}`,
//! `BenchmarkId::new`, `Bencher::iter`, and `black_box`.
//!
//! Two run modes, chosen by how cargo invokes the binary:
//!
//! - `cargo bench` passes `--bench` on the command line → **measure mode**:
//!   each benchmark is warmed up, then timed over enough iterations to fill a
//!   small per-benchmark budget, and mean/min time per iteration is printed.
//! - `cargo test` runs `[[bench]]` targets with `--test-threads=...` style
//!   libtest args but never `--bench` → **smoke mode**: each benchmark body
//!   runs exactly once so the target is exercised (and panics surface) without
//!   burning CI time.
//!
//! There is no statistical analysis, HTML report, or baseline comparison. A
//! positional CLI filter argument is honoured (substring match on the
//! benchmark id) so `cargo bench --bench mc_volume -- halfplane` works.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark time budget in measure mode.
const MEASURE_BUDGET: Duration = Duration::from_millis(1500);
/// Warm-up budget in measure mode.
const WARMUP_BUDGET: Duration = Duration::from_millis(300);

#[derive(Clone, Debug)]
enum Mode {
    /// `cargo bench`: time the body over many iterations.
    Measure,
    /// `cargo test`: run the body once to check it doesn't panic.
    Smoke,
}

/// The benchmark driver handed to `criterion_group!` target functions.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            mode: Mode::Smoke,
            filter: None,
        }
    }
}

impl Criterion {
    /// Reads the run mode and optional name filter from `std::env::args`,
    /// mirroring crates-io criterion's entry point.
    pub fn configure_from_args(mut self) -> Criterion {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" => self.mode = Mode::Measure,
                // libtest-style flags cargo may pass through; ignore values
                // of the ones that take a value.
                "--test-threads" | "--format" | "--logfile" | "--skip" | "--color" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, mut body: F) {
        if !self.matches(id) {
            return;
        }
        match self.mode {
            Mode::Smoke => {
                let mut b = Bencher {
                    mode: Mode::Smoke,
                    iters: 0,
                    elapsed: Duration::ZERO,
                };
                body(&mut b);
                println!("bench {id}: ok (smoke, {} iter)", b.iters.max(1));
            }
            Mode::Measure => {
                // Warm-up: also discovers a per-iteration cost estimate.
                let mut b = Bencher {
                    mode: Mode::Measure,
                    iters: 0,
                    elapsed: Duration::ZERO,
                };
                let warm = Instant::now();
                while warm.elapsed() < WARMUP_BUDGET {
                    body(&mut b);
                }
                let per_iter = if b.iters > 0 {
                    b.elapsed.as_secs_f64() / b.iters as f64
                } else {
                    WARMUP_BUDGET.as_secs_f64()
                };
                // Measurement: run whole bodies until the budget is spent.
                let mut m = Bencher {
                    mode: Mode::Measure,
                    iters: 0,
                    elapsed: Duration::ZERO,
                };
                let start = Instant::now();
                while start.elapsed() < MEASURE_BUDGET {
                    body(&mut m);
                }
                let mean = if m.iters > 0 {
                    m.elapsed.as_secs_f64() / m.iters as f64
                } else {
                    per_iter
                };
                println!(
                    "bench {id}: mean {}/iter over {} iters",
                    format_seconds(mean),
                    m.iters
                );
            }
        }
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named set of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; this shim sizes runs by wall-clock
    /// budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `body` under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&full, &mut body);
        self
    }

    /// Benchmarks `body(bencher, input)` under `group_name/id`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&full, |b| body(b, input));
        self
    }

    /// Ends the group (no-op; present for source compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` (parameter rendered via `Display`).
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Bare parameter id, mirroring crates-io criterion.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}
impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}
impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timer handle passed to benchmark bodies.
pub struct Bencher {
    mode: Mode,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`. In smoke mode it runs exactly once; in measure mode
    /// it runs a small batch and accumulates the elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let batch = match self.mode {
            Mode::Smoke => 1,
            Mode::Measure => 1,
        };
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += batch;
    }
}

/// Declares a benchmark group runner, mirroring crates-io criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion::default();
        let mut count = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("one", |b| b.iter(|| count += 1));
            g.finish();
        }
        assert_eq!(count, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filter: Some("wanted".into()),
        };
        let mut ran = false;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("other", |b| b.iter(|| ran = true));
            g.bench_function("wanted", |b| b.iter(|| ran = true));
            g.finish();
        }
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let data = vec![1, 2, 3];
        let mut sum = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10)
                .bench_with_input(BenchmarkId::new("sum", 3), &data, |b, d| {
                    b.iter(|| sum = d.iter().sum::<i32>())
                });
            g.finish();
        }
        assert_eq!(sum, 6);
    }
}
