//! Offline stand-in for the tiny slice of the `rand` crate this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::random::<f64>()`
//! and `Rng::random_range(..)` over integer, `usize` and `f64` ranges.
//!
//! The build environment has no crates-io access, so the real `rand` cannot
//! be fetched; this crate keeps the public call sites source-compatible.
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! per seed, which is all the seeded-reproducibility contract of
//! `cqa-approx::sample::Witness` requires. Statistical quality is far above
//! what the Monte-Carlo tolerances in this repo need; it is *not* a
//! cryptographic generator.
//!
//! The value stream differs from crates-io `rand` 0.9: experiments are
//! reproducible per seed *within* this shim, not across implementations.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (the one constructor this repo uses).
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling interface.
pub trait Rng {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of type `T` (for `f64`: uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in the given range. Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

/// xoshiro256++ state (Blackman & Vigna), seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256PlusPlus { s }
    }
}

impl Rng for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The default strong generator of the real crate; here xoshiro256++.
    pub type StdRng = super::Xoshiro256PlusPlus;
}

/// Types samplable uniformly without extra parameters (`Rng::random`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for i64 {
    fn sample<R: Rng>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits — every value is an
    /// exactly-representable dyadic rational, which
    /// `cqa-approx::sample::Witness` relies on.
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a `T` can be drawn from (`Rng::random_range`).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Types drawable uniformly from a bounded range. The blanket
/// [`SampleRange`] impls below are keyed on this trait so that type
/// inference links the range's element type to `random_range`'s return type
/// (e.g. `slice[rng.random_range(0..4)]` infers `usize`), matching crates-io
/// rand's behaviour.
pub trait SampleUniform: Sized {
    /// Uniform draw in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`). Panics on an empty range.
    fn sample_between<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Clone> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// Rejection-free-enough bounded draw: modulo over a full 128-bit draw. The
/// modulo bias is ≤ span/2¹²⁸, far below anything the tests resolve.
fn bounded(rng: &mut impl Rng, span: u128) -> u128 {
    debug_assert!(span > 0);
    let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
    wide % span
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                if inclusive {
                    assert!(lo <= hi, "empty range in random_range");
                } else {
                    assert!(lo < hi, "empty range in random_range");
                }
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_between<R: Rng>(rng: &mut R, lo: f64, hi: f64, inclusive: bool) -> f64 {
        assert!(lo < hi, "empty f64 range in random_range");
        let u: f64 = f64::sample(rng);
        let v = lo + u * (hi - lo);
        // Guard against rounding up to an excluded endpoint.
        if !inclusive && v >= hi {
            lo
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_interval_f64() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let w = rng.random_range(-2i64..=2);
            assert!((-2..=2).contains(&w));
            let u = rng.random_range(0usize..4);
            assert!(u < 4);
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0usize; 10];
        for _ in 0..100_000 {
            let v: f64 = rng.random();
            buckets[(v * 10.0) as usize] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "bucket {b}");
        }
    }
}
