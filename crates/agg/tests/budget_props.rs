//! Panic-freedom and determinism of budget-governed Σ-term evaluation.
//!
//! Mirror of the QE-side properties (`cqa-qe/tests/budget_props.rs`) one
//! layer up: a random `SumTerm` under an arbitrarily small [`EvalBudget`]
//! either evaluates or returns `AggError::Budget` — it never panics — and
//! an unhit budget leaves the sum bit-identical.

use cqa_agg::{AggError, Deterministic, RangeRestricted, SumTerm};
use cqa_arith::{rat, Rat};
use cqa_core::Database;
use cqa_logic::budget::EvalBudget;
use cqa_logic::{Atom, Formula, Rel};
use cqa_poly::{MPoly, Var};
use proptest::prelude::*;

const W: Var = Var(0);
const XOUT: Var = Var(1);
const Y: Var = Var(2);

/// A union of up to three small rational intervals as the `END` body.
fn end_formula_strategy() -> impl Strategy<Value = Formula> {
    prop::collection::vec((-4i64..=4, 1i64..=4), 1..4).prop_map(|ivs| {
        let mut f = Formula::False;
        for (lo, len) in ivs {
            // lo ≤ y ≤ lo + len as polynomial constraints on Y.
            let lo_r = Rat::from(lo);
            let hi_r = Rat::from(lo + len);
            let above = Formula::Atom(Atom::new(MPoly::constant(lo_r) - MPoly::var(Y), Rel::Le));
            let below = Formula::Atom(Atom::new(MPoly::var(Y) - MPoly::constant(hi_r), Rel::Le));
            f = f.or(above.and(below));
        }
        f
    })
}

/// γ(xout, w) ≡ xout = a·w² + b·w + c — syntactically deterministic, so
/// evaluation runs the whole enumeration/application pipeline.
fn gamma_strategy() -> impl Strategy<Value = Formula> {
    (-3i64..=3, -3i64..=3, -3i64..=3).prop_map(|(a, b, c)| {
        let rhs = MPoly::var(W).pow(2).scale(&Rat::from(a))
            + MPoly::var(W).scale(&Rat::from(b))
            + MPoly::constant(Rat::from(c));
        Formula::Atom(Atom::new(MPoly::var(XOUT) - rhs, Rel::Eq))
    })
}

/// A filter on `w`: a half-line, or no restriction.
fn filter_strategy() -> impl Strategy<Value = Formula> {
    prop_oneof![
        Just(Formula::True),
        (-3i64..=3).prop_map(|t| {
            Formula::Atom(Atom::new(
                MPoly::constant(Rat::from(t)) - MPoly::var(W),
                Rel::Le,
            ))
        }),
    ]
}

fn sum_term_strategy() -> impl Strategy<Value = SumTerm> {
    (end_formula_strategy(), gamma_strategy(), filter_strategy()).prop_map(
        |(end_formula, gamma, filter)| SumTerm {
            range: RangeRestricted {
                filter,
                tuple_vars: vec![W],
                end_var: Y,
                end_formula,
            },
            gamma: Deterministic {
                out_var: XOUT,
                in_vars: vec![W],
                formula: gamma,
            },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tiny budgets: Σ-evaluation returns Ok or a typed error — never a
    /// panic — for any term and any step allowance.
    #[test]
    fn sum_eval_never_panics_under_tiny_budget(
        term in sum_term_strategy(),
        max_steps in 0u64..40,
    ) {
        let db = Database::new();
        let budget = EvalBudget::unlimited().with_max_steps(max_steps);
        let _ = term.eval_with_budget(&db, &budget);
    }

    /// An unhit budget is invisible: same Ok value or same typed error as
    /// the unbudgeted evaluation, bit for bit.
    #[test]
    fn unhit_budget_is_invisible(term in sum_term_strategy()) {
        let db = Database::new();
        let unbudgeted = term.eval(&db);
        let budget = EvalBudget::unlimited().with_max_steps(u64::MAX / 2);
        let budgeted = term.eval_with_budget(&db, &budget);
        prop_assert_eq!(unbudgeted, budgeted);
    }

    /// Deadline budgets that already expired trip as `AggError::Budget`
    /// (not as a hang and not as a panic) on any non-trivial term.
    #[test]
    fn expired_deadline_trips_as_budget(term in sum_term_strategy()) {
        let db = Database::new();
        let budget = EvalBudget::unlimited()
            .with_deadline(std::time::Duration::ZERO)
            .with_max_steps(u64::MAX / 2);
        match term.eval_with_budget(&db, &budget) {
            Err(AggError::Budget(_)) | Ok(_) => {}
            Err(e) => prop_assert!(
                !matches!(e, AggError::Budget(_)),
                "typed non-budget error: {e}"
            ),
        }
    }
}

/// Determinism is not only about values: the group partition order of
/// `group_aggregate` is canonical (sorted by key) whatever the budget.
#[test]
fn group_aggregate_budgeted_matches_unbudgeted() {
    let mut db = Database::new();
    db.add_finite_relation(
        "Sales",
        vec![
            vec![rat(1, 1), rat(10, 1)],
            vec![rat(2, 1), rat(5, 1)],
            vec![rat(1, 1), rat(20, 1)],
            vec![rat(2, 1), rat(7, 1)],
        ],
    )
    .unwrap();
    let r = db.vars_mut().intern("r");
    let a = db.vars_mut().intern("a");
    let q = cqa_logic::parse_formula_with("Sales(r, a)", db.vars_mut()).unwrap();
    let plain = cqa_agg::group_aggregate(
        &db,
        &q,
        &[r, a],
        &[r],
        &MPoly::var(a),
        cqa_agg::Aggregate::Sum,
    )
    .unwrap();
    let budget = EvalBudget::unlimited().with_max_steps(u64::MAX / 2);
    let budgeted = cqa_agg::group_aggregate_with_budget(
        &db,
        &q,
        &[r, a],
        &[r],
        &MPoly::var(a),
        cqa_agg::Aggregate::Sum,
        &budget,
    )
    .unwrap();
    assert_eq!(plain, budgeted);
    assert_eq!(
        plain,
        vec![(vec![rat(1, 1)], rat(30, 1)), (vec![rat(2, 1)], rat(12, 1)),]
    );
}

/// The misuse path is typed now: a `GROUP BY` column outside the output
/// columns errors instead of asserting.
#[test]
fn group_by_outside_output_is_typed_error() {
    let mut db = Database::new();
    db.add_finite_relation("U", vec![vec![rat(1, 1)]]).unwrap();
    let x = db.vars_mut().intern("x");
    let z = db.vars_mut().intern("z");
    let q = cqa_logic::parse_formula_with("U(x)", db.vars_mut()).unwrap();
    let r = cqa_agg::group_aggregate(
        &db,
        &q,
        &[x],
        &[z],
        &MPoly::var(x),
        cqa_agg::Aggregate::Count,
    );
    assert!(matches!(r, Err(AggError::GroupByNotInOutput(_))));
}
