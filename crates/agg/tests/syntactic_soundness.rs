//! Soundness of the syntactic safety discipline against the semantic
//! oracles: whatever `cqa_core::is_syntactically_deterministic` /
//! `is_syntactically_finite` accept, the QE-based semantic checks
//! (`cqa_agg::is_deterministic`, `cqa_core::is_finite_set`) must accept
//! too. The syntactic checks are *under*-approximations — rejections are
//! allowed, false acceptances are not, because certified Σ-programs skip
//! the semantic check entirely at evaluation time.

use cqa_agg::{is_deterministic, Deterministic};
use cqa_arith::Rat;
use cqa_core::{is_finite_set, is_syntactically_deterministic, is_syntactically_finite};
use cqa_logic::{Atom, Formula, Rel};
use cqa_poly::{MPoly, Var};
use proptest::prelude::*;

const X: Var = Var(0);
const W: Var = Var(1);
const Y: Var = Var(2);
const Z: Var = Var(3);

/// A random small *linear* polynomial c₀ + cₓ·x + c_w·w + c_z·z.  Kept
/// linear deliberately: the semantic oracle closes γ(x,w) ∧ γ(x′,w) → x = x′
/// under three universal quantifiers, and Cohen–Hörmander on random
/// degree-2 instances of that sentence is minutes-per-case; the linear
/// fragment exercises the same certificate logic at property-test speed.
fn poly_xw() -> impl Strategy<Value = MPoly> {
    (-3i64..=3, -3i64..=3, -3i64..=3, -2i64..=2).prop_map(|(c0, cx, cw, cz)| {
        MPoly::constant(Rat::from(c0))
            + MPoly::var(X) * MPoly::constant(Rat::from(cx))
            + MPoly::var(W) * MPoly::constant(Rat::from(cw))
            + MPoly::var(Z) * MPoly::constant(Rat::from(cz))
    })
}

/// An explicit pin `c·x = t(w)` (the functional-graph shape), so the
/// generator produces syntactically-accepted candidates often enough for
/// the property to be non-vacuous.
fn pin_atom() -> impl Strategy<Value = Formula> {
    (1i64..=3, -3i64..=3, -2i64..=2).prop_map(|(cx, cw, c0)| {
        Formula::Atom(Atom::new(
            MPoly::var(X) * MPoly::constant(Rat::from(cx))
                - MPoly::var(W) * MPoly::constant(Rat::from(cw))
                - MPoly::constant(Rat::from(c0)),
            Rel::Eq,
        ))
    })
}

/// Random candidate summands γ(x, w): pins, arbitrary sign conditions,
/// conjunctions, disjunctions, and leading ∃z blocks.
fn gamma() -> impl Strategy<Value = Formula> {
    // The shim's `prop_oneof!` has no weight syntax; bias toward pins by
    // listing the pin arm twice.
    let atom = prop_oneof![
        pin_atom(),
        pin_atom(),
        (poly_xw(), 0usize..6).prop_map(|(p, r)| {
            let rel = [Rel::Eq, Rel::Neq, Rel::Lt, Rel::Le, Rel::Gt, Rel::Ge][r];
            Formula::Atom(Atom::new(p, rel))
        }),
    ];
    atom.prop_recursive(2, 6, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|f| Formula::exists(vec![Z], f)),
        ]
    })
}

/// Random QF relation-free formulas over (x, y) for the finiteness
/// property, again biased toward pins so acceptance occurs.
fn finite_candidate() -> impl Strategy<Value = Formula> {
    let pin_x = (-3i64..=3).prop_map(|c| {
        Formula::Atom(Atom::new(
            MPoly::var(X) - MPoly::constant(Rat::from(c)),
            Rel::Eq,
        ))
    });
    let pin_y_of_x = (-2i64..=2, -2i64..=2).prop_map(|(a, b)| {
        Formula::Atom(Atom::new(
            MPoly::var(Y)
                - MPoly::var(X) * MPoly::constant(Rat::from(a))
                - MPoly::constant(Rat::from(b)),
            Rel::Eq,
        ))
    });
    let ineq = (-3i64..=3, 0usize..4).prop_map(|(c, r)| {
        let rel = [Rel::Lt, Rel::Le, Rel::Gt, Rel::Ge][r];
        Formula::Atom(Atom::new(
            MPoly::var(X) - MPoly::constant(Rat::from(c)),
            rel,
        ))
    });
    let atom = prop_oneof![pin_x, pin_y_of_x, ineq];
    atom.prop_recursive(2, 6, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Syntactic determinism is sound: an accepted γ passes the QE-based
    /// semantic check `∀w∀x∀x′. γ(x,w) ∧ γ(x′,w) → x = x′`.
    #[test]
    fn syntactic_determinism_implies_semantic(g in gamma()) {
        if is_syntactically_deterministic(&g, X, &[W]) {
            let det = Deterministic { out_var: X, in_vars: vec![W], formula: g.clone() };
            let semantic = is_deterministic(&det).unwrap();
            prop_assert!(
                semantic,
                "syntactically accepted but semantically non-deterministic: {g:?}"
            );
        }
    }

    /// Syntactic finiteness is sound: an accepted formula defines a finite
    /// set according to the projection-based semantic check.
    #[test]
    fn syntactic_finiteness_implies_semantic(f in finite_candidate()) {
        let vars = [X, Y];
        if is_syntactically_finite(&f, &vars) {
            let semantic = is_finite_set(&f, &vars).unwrap();
            prop_assert!(
                semantic,
                "syntactically accepted but semantically infinite: {f:?}"
            );
        }
    }
}

/// The property above is vacuous if the generator never produces accepted
/// candidates; these fixed shapes pin down that acceptance actually
/// happens.
#[test]
fn acceptance_is_not_vacuous() {
    // 2x = 3w + 1 — a pin.
    let pin = Formula::Atom(Atom::new(
        MPoly::var(X) * MPoly::constant(Rat::from(2))
            - MPoly::var(W) * MPoly::constant(Rat::from(3))
            - MPoly::constant(Rat::from(1)),
        Rel::Eq,
    ));
    assert!(is_syntactically_deterministic(&pin, X, &[W]));
    // ∃z. pin ∧ z > w.
    let guarded = Formula::exists(
        vec![Z],
        pin.clone().and(Formula::Atom(Atom::new(
            MPoly::var(Z) - MPoly::var(W),
            Rel::Gt,
        ))),
    );
    assert!(is_syntactically_deterministic(&guarded, X, &[W]));
    // (x = 1 ∨ x = 2) ∧ y = x + 1 is accepted as finite.
    let fx = |c: i64| {
        Formula::Atom(Atom::new(
            MPoly::var(X) - MPoly::constant(Rat::from(c)),
            Rel::Eq,
        ))
    };
    let fy = Formula::Atom(Atom::new(
        MPoly::var(Y) - MPoly::var(X) - MPoly::constant(Rat::from(1)),
        Rel::Eq,
    ));
    let f = fx(1).or(fx(2)).and(fy);
    assert!(is_syntactically_finite(&f, &[X, Y]));
}
