//! Theorem 3: FO+POLY+SUM computes volumes of semi-linear databases.
//!
//! Two independent realizations:
//!
//! * [`semilinear_volume`] — expand the relation / query to a
//!   quantifier-free linear formula and hand it to the exact engine of
//!   `cqa-geom` (inclusion–exclusion + Lasserre).
//! * [`volume_by_sweep_2d`] — the construction from the paper's own proof
//!   of Theorem 3 (§6.1): the section length `g(x) = Σ` lengths of maximal
//!   intervals of `{y : S(x, y)}` is piecewise linear in `x`; find its
//!   breakpoints, and integrate each linear piece exactly (the
//!   `(m·u²−m·l²)/2 + b(u−l)` summands of the proof are recovered by
//!   evaluating `g` at piece midpoints). Everything in sight — END points,
//!   the finitely many breakpoints, the summation — is expressible in
//!   FO+POLY+SUM; this function is its computational content.
//!
//! The two methods cross-validate each other in the tests and are compared
//! in the `semilinear_volume` bench (E2).

use crate::lang::AggError;
use cqa_approx::sample::Witness;
use cqa_arith::Rat;
use cqa_core::{decompose_1d, Database};
use cqa_geom::{volume, VolumeError};
use cqa_logic::budget::EvalBudget;
use cqa_logic::Formula;
use cqa_poly::{RealAlg, Var};

impl From<VolumeError> for AggError {
    fn from(e: VolumeError) -> AggError {
        match e {
            VolumeError::Budget(b) => AggError::Budget(b),
            e => AggError::Db(e.to_string()),
        }
    }
}

impl From<cqa_approx::ApproxError> for AggError {
    fn from(e: cqa_approx::ApproxError) -> AggError {
        match e {
            cqa_approx::ApproxError::Budget(b) => AggError::Budget(b),
            cqa_approx::ApproxError::Qe(q) => AggError::from(q),
            e => AggError::Db(e.to_string()),
        }
    }
}

/// The expanded, quantifier-free formula of a named relation.
pub fn semilinear_volume_formula(db: &Database, relation: &str) -> Result<Formula, AggError> {
    let rel = db
        .relation(relation)
        .ok_or_else(|| AggError::Db(format!("unknown relation {relation}")))?;
    let arity = rel.arity();
    // R(v0, …, v_{arity-1}) with canonical argument variables well above
    // anything interned in the database's map.
    let base = db.vars().len() as u32;
    let args: Vec<Var> = (0..arity as u32)
        .map(|i| Var(base + i + 1_000_000))
        .collect();
    let q = Formula::Rel {
        name: relation.to_string(),
        args: args.iter().map(|&v| cqa_poly::MPoly::var(v)).collect(),
    };
    let expanded = db.expand(&q)?;
    Ok(cqa_qe::eliminate(&expanded)?)
}

/// Exact volume of a semi-linear relation (Theorem 3).
pub fn semilinear_volume(db: &Database, relation: &str) -> Result<Rat, AggError> {
    let rel = db
        .relation(relation)
        .ok_or_else(|| AggError::Db(format!("unknown relation {relation}")))?;
    let arity = rel.arity();
    let base = db.vars().len() as u32;
    let args: Vec<Var> = (0..arity as u32)
        .map(|i| Var(base + i + 1_000_000))
        .collect();
    let q = Formula::Rel {
        name: relation.to_string(),
        args: args.iter().map(|&v| cqa_poly::MPoly::var(v)).collect(),
    };
    let expanded = db.expand(&q)?;
    let qf = cqa_qe::eliminate(&expanded)?;
    Ok(volume(&qf, &args)?)
}

/// Exact area of a two-dimensional semi-linear set by the paper's sweep
/// construction. `f` must be quantifier-free linear with free variables
/// `x` and `y`.
pub fn volume_by_sweep_2d(f: &Formula, x: Var, y: Var) -> Result<Rat, AggError> {
    if !f.is_relation_free() || !f.is_quantifier_free() {
        return Err(AggError::Db("sweep needs a quantifier-free formula".into()));
    }
    // Support of g: the projection onto x.
    let proj = cqa_qe::fourier_motzkin(&Formula::exists(vec![y], f.clone()))?;
    let support = decompose_1d(&proj, x).ok_or(AggError::NotOneDimensional)?;
    if support.is_empty() {
        return Ok(Rat::zero());
    }
    // Breakpoint candidates: x-coordinates where the section structure can
    // change — endpoints of the support plus x-coordinates of intersections
    // of constraint boundary lines (the arrangement's vertices), plus
    // x-values of vertical boundary lines.
    let mut breaks: Vec<Rat> = Vec::new();
    let mut push = |r: Rat| {
        if !breaks.contains(&r) {
            breaks.push(r);
        }
    };
    for iv in &support {
        for e in iv.finite_endpoints() {
            match e {
                RealAlg::Rational(r) => push(r),
                _ => return Err(AggError::IrrationalEndpoint),
            }
        }
    }
    // Boundary lines a·x + b·y + c = 0 from the atoms.
    let mut lines: Vec<(Rat, Rat, Rat)> = Vec::new();
    let mut bad = false;
    f.visit(&mut |g| {
        if let Formula::Atom(at) = g {
            if !at.poly.is_affine() {
                bad = true;
                return;
            }
            let mut a = Rat::zero();
            let mut b = Rat::zero();
            let mut c = Rat::zero();
            for (m, coeff) in at.poly.terms() {
                match m {
                    [] => c = coeff.clone(),
                    [(v, 1)] if *v == x => a = coeff.clone(),
                    [(v, 1)] if *v == y => b = coeff.clone(),
                    _ => bad = true,
                }
            }
            lines.push((a, b, c));
        }
    });
    if bad {
        return Err(AggError::Db("sweep needs linear atoms over (x, y)".into()));
    }
    for (i, (a1, b1, c1)) in lines.iter().enumerate() {
        if b1.is_zero() {
            if !a1.is_zero() {
                push(-(c1 / a1)); // vertical line
            }
            continue;
        }
        for (a2, b2, c2) in &lines[i + 1..] {
            if b2.is_zero() {
                continue;
            }
            // Intersect a1 x + b1 y + c1 = 0 with a2 x + b2 y + c2 = 0.
            let denom = a1 * b2 - a2 * b1;
            if denom.is_zero() {
                continue;
            }
            let xi = (b1 * c2 - b2 * c1) / &denom;
            push(xi);
        }
    }
    breaks.sort();

    // Integrate piecewise: on each open piece between consecutive
    // breakpoints (clipped to the support), g is linear, so
    // ∫ g = width · g(midpoint).
    let mut total = Rat::zero();
    for w in breaks.windows(2) {
        let (l, u) = (&w[0], &w[1]);
        if l == u {
            continue;
        }
        let mid = l.midpoint(u);
        let len = section_length(f, x, y, &mid)?;
        if !len.is_zero() {
            total += (u - l) * len;
        }
    }
    Ok(total)
}

/// Failure probability of the Monte Carlo fallback in
/// [`volume_with_fallback`]: the (ε, δ) tag always carries this δ.
pub const FALLBACK_DELTA: f64 = 0.05;

/// Seed of the deterministic witness used by the Monte Carlo fallback, so
/// degraded answers are reproducible run to run.
const FALLBACK_SEED: u64 = 0xC0A;

/// The outcome of [`volume_with_fallback`]: either the exact volume, or —
/// when the evaluation budget tripped — a Monte Carlo estimate tagged with
/// its accuracy guarantee.
#[derive(Clone, Debug, PartialEq)]
pub enum VolumeOutcome {
    /// The exact rational volume, computed within the budget.
    Exact(Rat),
    /// The budget tripped during exact evaluation, and the query degraded
    /// to sampling: `estimate` approximates the volume of the query region
    /// intersected with the unit box `I^k` (the paper's `VOL_I` setting),
    /// with `Pr[|estimate − VOL_I| > eps] ≤ delta` by Hoeffding's
    /// inequality over `samples` uniform points.
    Approximate {
        /// The sampled estimate of `VOL_I`.
        estimate: Rat,
        /// The additive error bound `ε`.
        eps: f64,
        /// The failure probability `δ` ([`FALLBACK_DELTA`]).
        delta: f64,
        /// Number of uniform sample points drawn.
        samples: usize,
    },
}

impl VolumeOutcome {
    /// The volume value, exact or estimated.
    pub fn value(&self) -> &Rat {
        match self {
            VolumeOutcome::Exact(v) => v,
            VolumeOutcome::Approximate { estimate, .. } => estimate,
        }
    }

    /// Whether the exact path completed (no degradation happened).
    pub fn is_exact(&self) -> bool {
        matches!(self, VolumeOutcome::Exact(_))
    }
}

/// Graceful exact→approximate degradation (the tentpole contract): compute
/// the exact volume of `{v⃗ : f(v⃗)}` under the evaluation `budget`; if the
/// budget trips mid-elimination, fall back to the multithreaded Monte
/// Carlo estimator of Theorem 4 and return the estimate tagged with its
/// `(ε, δ)` guarantee instead of failing.
///
/// The fallback draws `⌈ln(2/δ)/(2ε²)⌉ + 1` points (Hoeffding, single
/// fixed set — no VC-dimension factor needed) from a deterministic
/// witness, so a degraded answer is reproducible. It estimates the volume
/// *within the unit box* `I^k`; for queries whose region extends beyond
/// `I^k` the exact and approximate answers measure different sets — the
/// [`VolumeOutcome::Approximate`] tag makes the switch visible to callers.
///
/// Errors that are not budget trips (unknown relations, unbounded regions,
/// `ε ∉ (0, 1)`) are reported as errors, not degraded.
pub fn volume_with_fallback(
    db: &Database,
    f: &Formula,
    vars: &[Var],
    budget: &EvalBudget,
    eps: f64,
) -> Result<VolumeOutcome, AggError> {
    if !(eps > 0.0 && eps < 1.0) {
        return Err(AggError::Db(format!("ε must lie in (0, 1), got {eps}")));
    }
    let exact = || -> Result<Rat, AggError> {
        let expanded = db.expand(f)?;
        let qf = cqa_qe::eliminate_with_budget(&expanded, budget)?;
        Ok(cqa_geom::volume_with_budget(&qf, vars, budget)?)
    };
    match exact() {
        Ok(v) => Ok(VolumeOutcome::Exact(v)),
        Err(AggError::Budget(_)) => {
            let delta = FALLBACK_DELTA;
            let samples = ((2.0 / delta).ln() / (2.0 * eps * eps)).ceil() as usize + 1;
            let mut w = Witness::new(FALLBACK_SEED);
            let threads = cqa_approx::par::default_threads();
            // The batched kernel sweep; the (discarded) lane stats are
            // surfaced by callers that keep service counters (cqa-engine).
            let (estimate, _lanes) = cqa_approx::mc::mc_volume_in_unit_box_stats(
                db,
                f,
                vars,
                samples,
                &mut w,
                threads,
                &EvalBudget::unlimited(),
            )?;
            Ok(VolumeOutcome::Approximate {
                estimate,
                eps,
                delta,
                samples,
            })
        }
        Err(e) => Err(e),
    }
}

/// The total length of the section `{y : f(x₀, y)}`.
fn section_length(f: &Formula, x: Var, y: Var, x0: &Rat) -> Result<Rat, AggError> {
    let sec = f.subst_rat(x, x0);
    let ivs = decompose_1d(&sec, y).ok_or(AggError::NotOneDimensional)?;
    let mut total = Rat::zero();
    for iv in ivs {
        if iv.is_point() {
            continue;
        }
        match iv.length(&Rat::new(1i64.into(), 1_000_000i64.into())) {
            Some(len) => total += len,
            None => return Err(AggError::Db("unbounded section".into())),
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;
    use cqa_logic::{parse_formula_with, VarMap};

    #[test]
    fn triangle_volume_via_database() {
        let mut db = Database::new();
        db.define("T", &["x", "y"], "x >= 0 & y >= 0 & x + y <= 1")
            .unwrap();
        assert_eq!(semilinear_volume(&db, "T").unwrap(), rat(1, 2));
    }

    #[test]
    fn union_relation_volume() {
        let mut db = Database::new();
        db.define(
            "U",
            &["x", "y"],
            "(0 <= x & x <= 2 & 0 <= y & y <= 2) | (1 <= x & x <= 3 & 1 <= y & y <= 3)",
        )
        .unwrap();
        assert_eq!(semilinear_volume(&db, "U").unwrap(), rat(7, 1));
    }

    #[test]
    fn volume_of_projection_defined_relation() {
        let mut db = Database::new();
        db.define(
            "T",
            &["x", "y", "z"],
            "x >= 0 & y >= 0 & z >= 0 & x + y + z <= 1",
        )
        .unwrap();
        assert_eq!(semilinear_volume(&db, "T").unwrap(), rat(1, 6));
    }

    #[test]
    fn unbounded_relation_errors() {
        let mut db = Database::new();
        db.define("H", &["x", "y"], "x >= 0").unwrap();
        assert!(semilinear_volume(&db, "H").is_err());
    }

    fn sweep(src: &str) -> Rat {
        let mut vars = VarMap::new();
        let x = vars.intern("x");
        let y = vars.intern("y");
        let f = parse_formula_with(src, &mut vars).unwrap();
        volume_by_sweep_2d(&f, x, y).unwrap()
    }

    #[test]
    fn sweep_matches_closed_forms() {
        assert_eq!(sweep("x >= 0 & y >= 0 & x + y <= 1"), rat(1, 2));
        assert_eq!(sweep("0 <= x & x <= 2 & 0 <= y & y <= 3"), rat(6, 1));
        // Union with overlap: 7.
        assert_eq!(
            sweep("(0 <= x & x <= 2 & 0 <= y & y <= 2) | (1 <= x & x <= 3 & 1 <= y & y <= 3)"),
            rat(7, 1)
        );
        // Diamond |x| + |y| ≤ 1 (as clauses): area 2.
        assert_eq!(
            sweep(
                "(x >= 0 & y >= 0 & x + y <= 1) | (x <= 0 & y >= 0 & y - x <= 1) \
                 | (x >= 0 & y <= 0 & x - y <= 1) | (x <= 0 & y <= 0 & 0 - x - y <= 1)"
            ),
            rat(2, 1)
        );
    }

    #[test]
    fn sweep_agrees_with_lasserre_on_sections_with_holes() {
        let src = "(0 <= x & x <= 4 & 0 <= y & y <= 4) & !(1 <= x & x <= 2 & 1 <= y & y <= 3)";
        let mut vars = VarMap::new();
        let x = vars.intern("x");
        let y = vars.intern("y");
        let f = parse_formula_with(src, &mut vars).unwrap();
        let s = volume_by_sweep_2d(&f, x, y).unwrap();
        let l = volume(&f, &[x, y]).unwrap();
        assert_eq!(s, l);
        assert_eq!(s, rat(14, 1)); // 16 - 2
    }

    #[test]
    fn sweep_empty_and_degenerate() {
        assert_eq!(sweep("x > 0 & x < 0"), rat(0, 1));
        assert_eq!(sweep("x = 1 & 0 <= y & y <= 5"), rat(0, 1));
    }

    #[test]
    fn paper_example_parametric_slab() {
        // §3 worked example at (x1, x2) = (0, 1): area of
        // {(y1, y2) : 0 < y1 < 1 ∧ 0 ≤ y2 ≤ y1} = (1² - 0²)/2 = 1/2.
        assert_eq!(sweep("0 < x & x < 1 & 0 <= y & y <= x"), rat(1, 2));
    }
}
