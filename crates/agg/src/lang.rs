//! The FO+POLY+SUM term-former: END, range restriction, determinism and
//! summation.

use cqa_arith::Rat;
use cqa_core::{decompose_1d, Database, DbError, Endpoint, SafetyError};
use cqa_logic::budget::{BudgetExceeded, EvalBudget};
use cqa_logic::Formula;
use cqa_poly::{RealAlg, Var};
use cqa_qe::QeError;

/// Errors from FO+POLY+SUM evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggError {
    /// Database-level failure (unknown relation, parse, …).
    Db(String),
    /// Quantifier elimination failed.
    Qe(QeError),
    /// A formula used as `END` body was not one-dimensional in the bound
    /// variable after substitution.
    NotOneDimensional,
    /// An interval endpoint is irrational; exact rational summation is
    /// impossible. (Only arises for semi-algebraic inputs; the paper's
    /// Theorem 3 concerns semi-linear inputs, whose endpoints are
    /// rational.) Use [`end_points`] and work with `RealAlg` directly, or
    /// supply an approximation precision.
    IrrationalEndpoint,
    /// The γ formula is not deterministic (more than one output for some
    /// input).
    NotDeterministic,
    /// A γ formula expected to be total was undefined at some input.
    GammaPartial,
    /// A `GROUP BY` column is not among the query's output columns.
    GroupByNotInOutput(String),
    /// An eliminated formula left a residue that could not be evaluated
    /// where a definite value was required (e.g. a ground filter instance
    /// that did not reduce to a truth value). Surfaced as a typed error
    /// instead of a panic or a silently-biased default.
    Residual(String),
    /// The evaluation budget was exhausted (deadline, step or atom limit).
    Budget(BudgetExceeded),
}

impl std::fmt::Display for AggError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggError::Db(m) => write!(f, "database error: {m}"),
            AggError::Qe(e) => write!(f, "quantifier elimination failed: {e}"),
            AggError::NotOneDimensional => write!(f, "END body is not one-dimensional"),
            AggError::IrrationalEndpoint => write!(f, "irrational interval endpoint"),
            AggError::NotDeterministic => write!(f, "γ formula is not deterministic"),
            AggError::GammaPartial => write!(f, "γ formula is undefined at some input"),
            AggError::GroupByNotInOutput(v) => {
                write!(f, "GROUP BY column {v} is not among the output columns")
            }
            AggError::Residual(m) => write!(f, "unevaluable residual: {m}"),
            AggError::Budget(b) => write!(f, "{b}"),
        }
    }
}
impl std::error::Error for AggError {}

impl From<QeError> for AggError {
    fn from(e: QeError) -> AggError {
        match e {
            QeError::Budget(b) => AggError::Budget(b),
            e => AggError::Qe(e),
        }
    }
}
impl From<DbError> for AggError {
    fn from(e: DbError) -> AggError {
        AggError::Db(e.to_string())
    }
}
impl From<BudgetExceeded> for AggError {
    fn from(b: BudgetExceeded) -> AggError {
        AggError::Budget(b)
    }
}
impl From<SafetyError> for AggError {
    fn from(e: SafetyError) -> AggError {
        match e {
            SafetyError::Infinite => AggError::Db("aggregate over an infinite set".into()),
            SafetyError::IrrationalPoint => AggError::IrrationalEndpoint,
            SafetyError::Qe(q) => AggError::from(q),
            SafetyError::Budget(b) => AggError::Budget(b),
            e @ SafetyError::UnboundVariable(_) => AggError::Db(e.to_string()),
        }
    }
}

/// `END[y, φ(y)]` evaluated against a database: the endpoints of the
/// maximal intervals composing `{y : φ(y)}` (after substituting relation
/// definitions and eliminating quantifiers). `φ` must have `y` as its only
/// free variable.
pub fn end_points(db: &Database, phi: &Formula, y: Var) -> Result<Vec<RealAlg>, AggError> {
    end_points_with_budget(db, phi, y, &EvalBudget::unlimited())
}

/// [`end_points`] under a cooperative evaluation budget.
pub fn end_points_with_budget(
    db: &Database,
    phi: &Formula,
    y: Var,
    budget: &EvalBudget,
) -> Result<Vec<RealAlg>, AggError> {
    let expanded = db.expand(phi)?;
    let qf = cqa_qe::eliminate_with_budget(&expanded, budget)?;
    let ivs = decompose_1d(&qf, y).ok_or(AggError::NotOneDimensional)?;
    let mut out: Vec<RealAlg> = Vec::new();
    for iv in ivs {
        for e in [&iv.lo, &iv.hi] {
            if let Endpoint::Value(a, _) = e {
                if !out.contains(a) {
                    out.push(a.clone());
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Rational endpoints of `END[y, φ]`, erroring on irrational ones.
pub fn end_points_rational(db: &Database, phi: &Formula, y: Var) -> Result<Vec<Rat>, AggError> {
    end_points(db, phi, y)?
        .into_iter()
        .map(|a| match a {
            RealAlg::Rational(r) => Ok(r),
            _ => Err(AggError::IrrationalEndpoint),
        })
        .collect()
}

/// A range-restricted expression `ρ(w⃗) ≡ (φ₁(w⃗) | END[y, φ₂(y)])`:
/// the tuples `w⃗` satisfying `φ₁` all of whose coordinates are endpoints
/// of the intervals composing `φ₂`. Guaranteed finite.
#[derive(Clone, Debug)]
pub struct RangeRestricted {
    /// The filter `φ₁(w⃗)`.
    pub filter: Formula,
    /// The tuple variables `w⃗` (also the free variables of `filter` that
    /// range over endpoints).
    pub tuple_vars: Vec<Var>,
    /// The `END` bound variable `y`.
    pub end_var: Var,
    /// The `END` body `φ₂(y)`.
    pub end_formula: Formula,
}

impl RangeRestricted {
    /// Enumerates `ρ(D)`: all tuples of endpoints satisfying the filter.
    /// Requires rational endpoints (semi-linear `φ₂`).
    pub fn enumerate(&self, db: &Database) -> Result<Vec<Vec<Rat>>, AggError> {
        self.enumerate_with_budget(db, &EvalBudget::unlimited())
    }

    /// [`Self::enumerate`] under a cooperative evaluation budget: one step
    /// is charged per candidate tuple (the odometer over endpoint tuples is
    /// the combinatorial blow-up here — `|END|^k` filter evaluations).
    pub fn enumerate_with_budget(
        &self,
        db: &Database,
        budget: &EvalBudget,
    ) -> Result<Vec<Vec<Rat>>, AggError> {
        let ends = end_points_with_budget(db, &self.end_formula, self.end_var, budget)?
            .into_iter()
            .map(|a| match a {
                RealAlg::Rational(r) => Ok(r),
                _ => Err(AggError::IrrationalEndpoint),
            })
            .collect::<Result<Vec<Rat>, AggError>>()?;
        let k = self.tuple_vars.len();
        let mut out = Vec::new();
        let mut idx = vec![0usize; k];
        if ends.is_empty() && k > 0 {
            return Ok(out);
        }
        loop {
            budget.check()?;
            let tuple: Vec<Rat> = idx.iter().map(|&i| ends[i].clone()).collect();
            // Evaluate the filter with relation atoms resolved by the db.
            let mut f = db.expand(&self.filter)?;
            for (v, x) in self.tuple_vars.iter().zip(&tuple) {
                f = f.subst_rat(*v, x);
            }
            let qf = cqa_qe::eliminate_with_budget(&f, budget)?;
            // The substituted filter is ground and relation-free, so it
            // must evaluate to a definite truth value; a residue is a bug
            // upstream, reported as an error — not silently counted as a
            // miss (the old `unwrap_or(false)` bias).
            let truth = qf.eval(&|_| Rat::zero(), &[]).ok_or_else(|| {
                AggError::Residual(format!(
                    "ground filter instance did not reduce to a truth value: {qf:?}"
                ))
            })?;
            if truth {
                out.push(tuple);
            }
            // Odometer.
            let mut j = 0;
            loop {
                if j == k {
                    return Ok(out);
                }
                idx[j] += 1;
                if idx[j] < ends.len() {
                    break;
                }
                idx[j] = 0;
                j += 1;
            }
        }
    }
}

/// A deterministic formula `γ(x, w⃗)`: a definable partial function from
/// `w⃗` to at most one `x`.
#[derive(Clone, Debug)]
pub struct Deterministic {
    /// The output variable `x`.
    pub out_var: Var,
    /// The input variables `w⃗`.
    pub in_vars: Vec<Var>,
    /// The defining formula `γ(x, w⃗)`.
    pub formula: Formula,
}

impl Deterministic {
    /// Applies the partial function at `w⃗ = args`; `None` where undefined.
    pub fn apply(&self, db: &Database, args: &[Rat]) -> Result<Option<Rat>, AggError> {
        self.apply_with_budget(db, args, &EvalBudget::unlimited())
    }

    /// [`Self::apply`] under a cooperative evaluation budget.
    pub fn apply_with_budget(
        &self,
        db: &Database,
        args: &[Rat],
        budget: &EvalBudget,
    ) -> Result<Option<Rat>, AggError> {
        budget.check()?;
        let mut f = db.expand(&self.formula)?;
        for (v, x) in self.in_vars.iter().zip(args) {
            f = f.subst_rat(*v, x);
        }
        let qf = cqa_qe::eliminate_with_budget(&f, budget)?;
        let ivs = decompose_1d(&qf, self.out_var).ok_or(AggError::NotOneDimensional)?;
        match ivs.len() {
            0 => Ok(None),
            1 if ivs[0].is_point() => match &ivs[0].lo {
                Endpoint::Value(RealAlg::Rational(r), _) => Ok(Some(r.clone())),
                Endpoint::Value(_, _) => Err(AggError::IrrationalEndpoint),
                // A point interval must carry a value endpoint; an
                // unbounded endpoint here means the decomposition is
                // inconsistent — a typed error, not a panic.
                _ => Err(AggError::Residual(
                    "point interval without a value endpoint".into(),
                )),
            },
            _ => Err(AggError::NotDeterministic),
        }
    }
}

/// Decides whether `γ(x, w⃗)` is deterministic:
/// `∀w⃗ ∀x ∀x'. γ(x, w⃗) ∧ γ(x', w⃗) → x = x'` — a sentence the QE engine
/// decides (the paper notes "it is decidable if a formula is
/// deterministic").
pub fn is_deterministic(gamma: &Deterministic) -> Result<bool, AggError> {
    is_deterministic_with_budget(gamma, &EvalBudget::unlimited())
}

/// [`is_deterministic`] under a cooperative evaluation budget (the check
/// is itself a QE problem, and so can blow up).
pub fn is_deterministic_with_budget(
    gamma: &Deterministic,
    budget: &EvalBudget,
) -> Result<bool, AggError> {
    let f = &gamma.formula;
    if !f.is_relation_free() {
        // Relation atoms are database-dependent; conservatively reject.
        return Ok(false);
    }
    let x = gamma.out_var;
    // Fresh variable for x'.
    let xp = f.fresh_var();
    let f2 = f.subst_poly(x, &cqa_poly::MPoly::var(xp));
    let claim = f.clone().and(f2).implies(Formula::eq(
        cqa_poly::MPoly::var(x),
        cqa_poly::MPoly::var(xp),
    ));
    Ok(cqa_qe::is_valid_with_budget(&claim, budget)?)
}

/// The summation term `Σ_{ρ(w⃗)} γ`: the sum of the bag `γ(ρ(D))`.
#[derive(Clone, Debug)]
pub struct SumTerm {
    /// The range-restricted expression supplying the finite bag of tuples.
    pub range: RangeRestricted,
    /// The deterministic summand.
    pub gamma: Deterministic,
}

impl SumTerm {
    /// Evaluates the term against a database.
    ///
    /// Checks γ's determinism first (rejecting with
    /// [`AggError::NotDeterministic`]) — mirroring the language definition,
    /// where only deterministic formulas may be summed. Syntactically
    /// certified γ (the paper's functional-graph shape `x = t(w⃗)`,
    /// recognized by [`cqa_core::is_syntactically_deterministic`]) skips
    /// the QE-based sentence check entirely; this also admits relational γ
    /// with a pinning conjunct, which the semantic check conservatively
    /// rejects.
    pub fn eval(&self, db: &Database) -> Result<Rat, AggError> {
        self.eval_with_budget(db, &EvalBudget::unlimited())
    }

    /// [`Self::eval`] under a cooperative evaluation budget: the budget is
    /// threaded through the determinism check, the range enumeration and
    /// each per-tuple γ application, so a runaway sum returns
    /// [`AggError::Budget`] instead of hanging. When the budget is not hit
    /// the result is bit-identical to the unbudgeted one.
    pub fn eval_with_budget(&self, db: &Database, budget: &EvalBudget) -> Result<Rat, AggError> {
        let certified = cqa_core::is_syntactically_deterministic(
            &self.gamma.formula,
            self.gamma.out_var,
            &self.gamma.in_vars,
        );
        if !certified && !is_deterministic_with_budget(&self.gamma, budget)? {
            return Err(AggError::NotDeterministic);
        }
        let tuples = self.range.enumerate_with_budget(db, budget)?;
        let mut total = Rat::zero();
        for t in tuples {
            budget.check()?;
            if let Some(v) = self.gamma.apply_with_budget(db, &t, budget)? {
                total += &v;
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;
    use cqa_logic::parse_formula_with;

    /// The paper's first example (§5): the sum of all endpoints of the
    /// intervals composing φ(D).
    #[test]
    fn sum_of_endpoints_example() {
        let mut db = Database::new();
        // S = [0, 1/2] ∪ [3/4, 2].
        db.define("S", &["y"], "(0 <= y & y <= 0.5) | (0.75 <= y & y <= 2)")
            .unwrap();
        let y = db.vars_mut().intern("y");
        let w = db.vars_mut().intern("w");
        let x = db.vars_mut().intern("xout");
        let phi2 = parse_formula_with("S(y)", db.vars_mut()).unwrap();

        // γ(x, w) ≡ x = w; ρ(w) = (w = w | END[y, S(y)]).
        let term = SumTerm {
            range: RangeRestricted {
                filter: Formula::True,
                tuple_vars: vec![w],
                end_var: y,
                end_formula: phi2,
            },
            gamma: Deterministic {
                out_var: x,
                in_vars: vec![w],
                formula: parse_formula_with("xout = w", db.vars_mut()).unwrap(),
            },
        };
        // 0 + 1/2 + 3/4 + 2 = 13/4.
        assert_eq!(term.eval(&db).unwrap(), rat(13, 4));
    }

    #[test]
    fn endpoints_of_query_outputs() {
        let mut db = Database::new();
        db.define("S", &["y"], "0 <= y & y <= 1").unwrap();
        let y = db.vars_mut().intern("y");
        // φ(y) = S(y) ∧ y ≥ 1/2: endpoints {1/2, 1}.
        let phi = parse_formula_with("S(y) & y >= 0.5", db.vars_mut()).unwrap();
        let ends = end_points_rational(&db, &phi, y).unwrap();
        assert_eq!(ends, vec![rat(1, 2), rat(1, 1)]);
    }

    #[test]
    fn endpoints_through_projection() {
        let mut db = Database::new();
        db.define("T", &["x", "y"], "x >= 0 & y >= 0 & x + y <= 1")
            .unwrap();
        let x = db.vars_mut().intern("x");
        // END[x, ∃y T(x,y)] = {0, 1}.
        let phi = parse_formula_with("exists y. T(x, y)", db.vars_mut()).unwrap();
        let ends = end_points_rational(&db, &phi, x).unwrap();
        assert_eq!(ends, vec![rat(0, 1), rat(1, 1)]);
    }

    #[test]
    fn irrational_endpoints_flagged() {
        let mut db = Database::new();
        db.define("D", &["y"], "y*y <= 2").unwrap();
        let y = db.vars_mut().intern("y");
        let phi = parse_formula_with("D(y)", db.vars_mut()).unwrap();
        // Exact algebraic endpoints are available...
        let ends = end_points(&db, &phi, y).unwrap();
        assert_eq!(ends.len(), 2);
        assert!((ends[1].to_f64() - std::f64::consts::SQRT_2).abs() < 1e-9);
        // ...but rational summation refuses.
        assert_eq!(
            end_points_rational(&db, &phi, y),
            Err(AggError::IrrationalEndpoint)
        );
    }

    #[test]
    fn determinism_check() {
        let mut db = Database::new();
        let _ = db.vars_mut().intern("xout");
        let _ = db.vars_mut().intern("w");
        let ok = Deterministic {
            out_var: db.vars_mut().intern("xout"),
            in_vars: vec![db.vars_mut().intern("w")],
            formula: parse_formula_with("xout = w * w + 1", db.vars_mut()).unwrap(),
        };
        assert!(is_deterministic(&ok).unwrap());
        let bad = Deterministic {
            out_var: db.vars_mut().intern("xout"),
            in_vars: vec![db.vars_mut().intern("w")],
            formula: parse_formula_with("xout * xout = w", db.vars_mut()).unwrap(),
        };
        assert!(!is_deterministic(&bad).unwrap());
    }

    #[test]
    fn sum_rejects_nondeterministic_gamma() {
        let mut db = Database::new();
        db.define("S", &["y"], "y = 1 | y = 4").unwrap();
        let y = db.vars_mut().intern("y");
        let w = db.vars_mut().intern("w");
        let x = db.vars_mut().intern("xout");
        let term = SumTerm {
            range: RangeRestricted {
                filter: Formula::True,
                tuple_vars: vec![w],
                end_var: y,
                end_formula: parse_formula_with("S(y)", db.vars_mut()).unwrap(),
            },
            gamma: Deterministic {
                out_var: x,
                in_vars: vec![w],
                formula: parse_formula_with("xout * xout = w", db.vars_mut()).unwrap(),
            },
        };
        assert_eq!(term.eval(&db), Err(AggError::NotDeterministic));
    }

    #[test]
    fn syntactic_certificate_admits_relational_gamma() {
        // γ ≡ (xout = 2*w ∧ S(w)) mentions a relation, so the QE-based
        // `is_deterministic` conservatively rejects it — but the pinning
        // conjunct `xout = 2*w` certifies it syntactically, so the sum
        // evaluates instead of erroring. This also witnesses that certified
        // programs bypass the semantic check.
        let mut db = Database::new();
        db.define("S", &["y"], "y = 1 | y = 4").unwrap();
        let y = db.vars_mut().intern("y");
        let w = db.vars_mut().intern("w");
        let x = db.vars_mut().intern("xout");
        let gamma = Deterministic {
            out_var: x,
            in_vars: vec![w],
            formula: parse_formula_with("xout = 2*w & S(w)", db.vars_mut()).unwrap(),
        };
        assert!(!is_deterministic(&gamma).unwrap());
        let term = SumTerm {
            range: RangeRestricted {
                filter: Formula::True,
                tuple_vars: vec![w],
                end_var: y,
                end_formula: parse_formula_with("S(y)", db.vars_mut()).unwrap(),
            },
            gamma,
        };
        // Endpoints {1, 4}; both satisfy S; γ doubles them: 2 + 8 = 10.
        assert_eq!(term.eval(&db).unwrap(), rat(10, 1));
    }

    #[test]
    fn filtered_ranges() {
        let mut db = Database::new();
        db.define("S", &["y"], "(1 <= y & y <= 2) | y = 5").unwrap();
        let y = db.vars_mut().intern("y");
        let w = db.vars_mut().intern("w");
        let x = db.vars_mut().intern("xout");
        // Only endpoints above 1.5: {2, 5}; γ doubles them: 4 + 10 = 14.
        let term = SumTerm {
            range: RangeRestricted {
                filter: parse_formula_with("w > 1.5", db.vars_mut()).unwrap(),
                tuple_vars: vec![w],
                end_var: y,
                end_formula: parse_formula_with("S(y)", db.vars_mut()).unwrap(),
            },
            gamma: Deterministic {
                out_var: x,
                in_vars: vec![w],
                formula: parse_formula_with("xout = 2 * w", db.vars_mut()).unwrap(),
            },
        };
        assert_eq!(term.eval(&db).unwrap(), rat(14, 1));
    }

    #[test]
    fn pairs_of_endpoints() {
        let mut db = Database::new();
        db.define("S", &["y"], "0 <= y & y <= 1").unwrap();
        let y = db.vars_mut().intern("y");
        let w1 = db.vars_mut().intern("w1");
        let w2 = db.vars_mut().intern("w2");
        let x = db.vars_mut().intern("xout");
        // All ordered pairs (w1, w2) with w1 < w2 of endpoints {0,1}: only
        // (0,1); γ = w2 - w1 = 1.
        let term = SumTerm {
            range: RangeRestricted {
                filter: parse_formula_with("w1 < w2", db.vars_mut()).unwrap(),
                tuple_vars: vec![w1, w2],
                end_var: y,
                end_formula: parse_formula_with("S(y)", db.vars_mut()).unwrap(),
            },
            gamma: Deterministic {
                out_var: x,
                in_vars: vec![w1, w2],
                formula: parse_formula_with("xout = w2 - w1", db.vars_mut()).unwrap(),
            },
        };
        assert_eq!(term.eval(&db).unwrap(), rat(1, 1));
    }

    #[test]
    fn gamma_partiality() {
        let mut db = Database::new();
        db.define("S", &["y"], "y = 1 | y = 2").unwrap();
        let y = db.vars_mut().intern("y");
        let w = db.vars_mut().intern("w");
        let x = db.vars_mut().intern("xout");
        // γ defined only for w > 1.5: sums only the endpoint 2 → 2.
        let term = SumTerm {
            range: RangeRestricted {
                filter: Formula::True,
                tuple_vars: vec![w],
                end_var: y,
                end_formula: parse_formula_with("S(y)", db.vars_mut()).unwrap(),
            },
            gamma: Deterministic {
                out_var: x,
                in_vars: vec![w],
                formula: parse_formula_with("xout = w & w > 1.5", db.vars_mut()).unwrap(),
            },
        };
        assert_eq!(term.eval(&db).unwrap(), rat(2, 1));
    }

    #[test]
    fn quantified_filters_decide_exactly_after_elimination() {
        let mut db = Database::new();
        db.define("S", &["y"], "0 <= y & y <= 1").unwrap();
        let y = db.vars_mut().intern("y");
        let w = db.vars_mut().intern("w");
        let rr = RangeRestricted {
            filter: parse_formula_with("exists z. w < z & z < 1", db.vars_mut()).unwrap(),
            tuple_vars: vec![w],
            end_var: y,
            end_formula: parse_formula_with("S(y)", db.vars_mut()).unwrap(),
        };
        // Endpoints {0, 1}; only w = 0 leaves room below 1. The filter goes
        // through QE per tuple, and any residue it left would now surface
        // as a typed `AggError::Residual` — never a silent miss.
        assert_eq!(rr.enumerate(&db).unwrap(), vec![vec![rat(0, 1)]]);
    }

    #[test]
    fn residual_errors_are_typed_and_described() {
        let e = AggError::Residual("ground filter instance did not reduce".into());
        assert!(e.to_string().starts_with("unevaluable residual:"), "{e}");
        // Residues are their own variant, distinguishable from the generic
        // database error a caller might otherwise retry.
        assert_ne!(
            e,
            AggError::Db("ground filter instance did not reduce".into())
        );
    }

    #[test]
    fn partial_gamma_application_is_typed_not_a_panic() {
        let mut db = Database::new();
        let w = db.vars_mut().intern("w");
        let v = db.vars_mut().intern("v");
        // v² = w has no real solution at w = −1: the application is partial.
        let gamma = Deterministic {
            out_var: v,
            in_vars: vec![w],
            formula: parse_formula_with("v*v = w", db.vars_mut()).unwrap(),
        };
        assert_eq!(gamma.apply(&db, &[rat(-1, 1)]).unwrap(), None);
        // Callers that require totality (the polygon-area pipeline) surface
        // the miss as the typed `AggError::GammaPartial`, never a panic.
        let e = gamma
            .apply(&db, &[rat(-1, 1)])
            .unwrap()
            .ok_or(AggError::GammaPartial);
        assert!(matches!(e, Err(AggError::GammaPartial)));
    }
}
