//! Spatial aggregates beyond volume: exact integrals and averages of
//! polynomials over two-dimensional semi-linear sets.
//!
//! Section 1 of the paper motivates extending "standard aggregates such as
//! AVG … and ask[ing] for the *average* value of a polynomial over a
//! spatial object". For a semi-linear `S ⊆ ℝ²` and a polynomial
//! `p(x, y)`, the same sweep that proves Theorem 3 computes
//! `∫∫_S p dy dx` exactly:
//!
//! 1. the inner integral `h(x) = ∫_{S_x} p(x, y) dy` is a sum over the
//!    section's maximal intervals of exact univariate antiderivatives;
//! 2. between breakpoints of the arrangement, the section endpoints are
//!    affine in `x`, so `h` is a *polynomial* in `x` of degree at most
//!    `deg(p) + 1` on each piece;
//! 3. each piece is integrated exactly by sampling `h` at `deg + 2`
//!    rational nodes, interpolating (Lagrange, exact rational arithmetic),
//!    and integrating the interpolant.
//!
//! `AVG(p over S) = ∫∫_S p / VOL(S)` follows. Everything is exact — no
//! quadrature error, because polynomial interpolation of a polynomial *is*
//! the polynomial.

use crate::lang::AggError;
use crate::volume::volume_by_sweep_2d;
use cqa_arith::Rat;
use cqa_core::decompose_1d;
use cqa_logic::Formula;
use cqa_poly::{MPoly, RealAlg, UPoly, Var};

/// Exact `∫∫_S p(x, y) dy dx` for the semi-linear set `S = {(x,y) : f}`.
///
/// `f` must be quantifier-free linear with bounded solution set; `p` may be
/// any polynomial in `x` and `y`.
pub fn integral_over_2d(f: &Formula, x: Var, y: Var, p: &MPoly) -> Result<Rat, AggError> {
    if !f.is_relation_free() || !f.is_quantifier_free() {
        return Err(AggError::Db(
            "integral needs a quantifier-free formula".into(),
        ));
    }
    // Degree of h(x) on each piece: the antiderivative in y has degree
    // deg_y(p) + 1; substituting affine-in-x endpoints and adding the
    // x-dependence of p gives total degree ≤ deg(p) + 1.
    let degree_bound = (p.total_degree().unwrap_or(0) + 1) as usize;

    // Breakpoints: reuse the arrangement analysis of the volume sweep by
    // collecting candidate x-values the same way.
    let breaks = sweep_breakpoints(f, x, y)?;
    if breaks.len() < 2 {
        return Ok(Rat::zero());
    }

    let mut total = Rat::zero();
    for w in breaks.windows(2) {
        let (l, u) = (&w[0], &w[1]);
        if l == u {
            continue;
        }
        // Sample h at degree_bound + 1 distinct nodes inside (l, u).
        let n_nodes = degree_bound + 1;
        let width = u - l;
        let mut xs: Vec<Rat> = Vec::with_capacity(n_nodes);
        let mut hs: Vec<Rat> = Vec::with_capacity(n_nodes);
        for k in 0..n_nodes {
            // Strictly interior nodes: l + width·(k+1)/(n+1).
            let t = l + &width * Rat::new(((k + 1) as i64).into(), ((n_nodes + 1) as i64).into());
            let hval = section_integral(f, x, y, p, &t)?;
            xs.push(t);
            hs.push(hval);
        }
        let interp = lagrange_interpolate(&xs, &hs);
        total += interp.integrate_between(l, u);
    }
    Ok(total)
}

/// Exact `AVG(p over S) = ∫∫_S p / VOL(S)`. Errors on null sets.
pub fn average_over_2d(f: &Formula, x: Var, y: Var, p: &MPoly) -> Result<Rat, AggError> {
    let vol = volume_by_sweep_2d(f, x, y)?;
    if vol.is_zero() {
        return Err(AggError::Db("AVG over a null set".into()));
    }
    Ok(integral_over_2d(f, x, y, p)? / vol)
}

/// The inner integral `∫_{S_{x0}} p(x0, y) dy` (sections must be bounded).
fn section_integral(f: &Formula, x: Var, y: Var, p: &MPoly, x0: &Rat) -> Result<Rat, AggError> {
    let sec = f.subst_rat(x, x0);
    let ivs = decompose_1d(&sec, y).ok_or(AggError::NotOneDimensional)?;
    let integrand: UPoly = p
        .subst_rat(x, x0)
        .to_upoly(y)
        .ok_or(AggError::NotOneDimensional)?;
    let mut total = Rat::zero();
    for iv in ivs {
        if iv.is_point() {
            continue;
        }
        let ends = iv.finite_endpoints();
        if ends.len() != 2 {
            return Err(AggError::Db("unbounded section".into()));
        }
        let (lo, hi) = (rational_of(&ends[0])?, rational_of(&ends[1])?);
        total += integrand.integrate_between(&lo, &hi);
    }
    Ok(total)
}

fn rational_of(a: &RealAlg) -> Result<Rat, AggError> {
    a.as_rational().cloned().ok_or(AggError::IrrationalEndpoint)
}

/// Breakpoint candidates of the sweep: support endpoints, vertical lines,
/// and pairwise line intersections (same analysis as the volume sweep).
fn sweep_breakpoints(f: &Formula, x: Var, y: Var) -> Result<Vec<Rat>, AggError> {
    let proj = cqa_qe::fourier_motzkin(&Formula::exists(vec![y], f.clone()))?;
    let support = decompose_1d(&proj, x).ok_or(AggError::NotOneDimensional)?;
    let mut breaks: Vec<Rat> = Vec::new();
    let mut push = |r: Rat| {
        if !breaks.contains(&r) {
            breaks.push(r);
        }
    };
    for iv in &support {
        for e in iv.finite_endpoints() {
            push(rational_of(&e)?);
        }
    }
    let mut lines: Vec<(Rat, Rat, Rat)> = Vec::new();
    let mut bad = false;
    f.visit(&mut |g| {
        if let Formula::Atom(at) = g {
            let mut a = Rat::zero();
            let mut b = Rat::zero();
            let mut c = Rat::zero();
            for (m, coeff) in at.poly.terms() {
                match m {
                    [] => c = coeff.clone(),
                    [(v, 1)] if *v == x => a = coeff.clone(),
                    [(v, 1)] if *v == y => b = coeff.clone(),
                    _ => bad = true,
                }
            }
            lines.push((a, b, c));
        }
    });
    if bad {
        return Err(AggError::Db(
            "integral needs linear atoms over (x, y)".into(),
        ));
    }
    for (i, (a1, b1, c1)) in lines.iter().enumerate() {
        if b1.is_zero() {
            if !a1.is_zero() {
                push(-(c1 / a1));
            }
            continue;
        }
        for (a2, b2, c2) in &lines[i + 1..] {
            if b2.is_zero() {
                continue;
            }
            let denom = a1 * b2 - a2 * b1;
            if !denom.is_zero() {
                push((b1 * c2 - b2 * c1) / &denom);
            }
        }
    }
    breaks.sort();
    Ok(breaks)
}

/// Exact Lagrange interpolation through `(xs[i], ys[i])`.
fn lagrange_interpolate(xs: &[Rat], ys: &[Rat]) -> UPoly {
    let n = xs.len();
    let mut acc = UPoly::zero();
    for i in 0..n {
        // Basis polynomial Π_{j≠i} (X - xs[j]) / (xs[i] - xs[j]).
        let mut basis = UPoly::one();
        let mut denom = Rat::one();
        for j in 0..n {
            if j == i {
                continue;
            }
            basis = &basis * &UPoly::from_coeffs(vec![-xs[j].clone(), Rat::one()]);
            denom = denom * (&xs[i] - &xs[j]);
        }
        acc = &acc + &basis.scale(&(&ys[i] / &denom));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;
    use cqa_logic::{parse_formula_with, VarMap};

    fn setup(src: &str) -> (Formula, Var, Var, VarMap) {
        let mut vars = VarMap::new();
        let x = vars.intern("x");
        let y = vars.intern("y");
        let f = parse_formula_with(src, &mut vars).unwrap();
        (f, x, y, vars)
    }

    #[test]
    fn integral_of_one_is_area() {
        let (f, x, y, _) = setup("x >= 0 & y >= 0 & x + y <= 1");
        let one = MPoly::one();
        assert_eq!(integral_over_2d(&f, x, y, &one).unwrap(), rat(1, 2));
    }

    #[test]
    fn integral_of_x_over_unit_square() {
        // ∫∫_{[0,1]²} x = 1/2; of x·y = 1/4; of x² = 1/3.
        let (f, x, y, _) = setup("0 <= x & x <= 1 & 0 <= y & y <= 1");
        assert_eq!(
            integral_over_2d(&f, x, y, &MPoly::var(x)).unwrap(),
            rat(1, 2)
        );
        let xy = MPoly::var(x) * MPoly::var(y);
        assert_eq!(integral_over_2d(&f, x, y, &xy).unwrap(), rat(1, 4));
        assert_eq!(
            integral_over_2d(&f, x, y, &MPoly::var(x).pow(2)).unwrap(),
            rat(1, 3)
        );
    }

    #[test]
    fn centroid_of_triangle() {
        // Centroid of {x,y ≥ 0, x+y ≤ 1} is (1/3, 1/3).
        let (f, x, y, _) = setup("x >= 0 & y >= 0 & x + y <= 1");
        assert_eq!(
            average_over_2d(&f, x, y, &MPoly::var(x)).unwrap(),
            rat(1, 3)
        );
        assert_eq!(
            average_over_2d(&f, x, y, &MPoly::var(y)).unwrap(),
            rat(1, 3)
        );
    }

    #[test]
    fn second_moment_of_triangle() {
        // ∫∫_T x² dy dx over the unit right triangle = ∫₀¹ x²(1−x) dx = 1/12.
        let (f, x, y, _) = setup("x >= 0 & y >= 0 & x + y <= 1");
        assert_eq!(
            integral_over_2d(&f, x, y, &MPoly::var(x).pow(2)).unwrap(),
            rat(1, 12)
        );
    }

    #[test]
    fn integral_over_union_with_hole() {
        // [0,2]² minus [0,1]²: ∫∫ x dA = ∫∫_{big} − ∫∫_{small} = 4·1 − 1/2·...
        // ∫∫_{[0,2]²} x = 2·(2²/2) = 4; ∫∫_{[0,1]²} x = 1/2 → 7/2.
        let (f, x, y, _) =
            setup("0 <= x & x <= 2 & 0 <= y & y <= 2 & !(0 <= x & x <= 1 & 0 <= y & y <= 1)");
        assert_eq!(
            integral_over_2d(&f, x, y, &MPoly::var(x)).unwrap(),
            rat(7, 2)
        );
    }

    #[test]
    fn average_shifts_with_set() {
        // Average of x over [3,5]×[0,1] is 4.
        let (f, x, y, _) = setup("3 <= x & x <= 5 & 0 <= y & y <= 1");
        assert_eq!(
            average_over_2d(&f, x, y, &MPoly::var(x)).unwrap(),
            rat(4, 1)
        );
    }

    #[test]
    fn null_set_average_rejected() {
        let (f, x, y, _) = setup("x = 1 & 0 <= y & y <= 1");
        assert!(average_over_2d(&f, x, y, &MPoly::one()).is_err());
    }

    #[test]
    fn polynomial_of_both_variables() {
        // ∫∫_{[0,1]²} (x + y)² = ∫∫ x² + 2xy + y² = 1/3 + 1/2 + 1/3 = 7/6.
        let (f, x, y, _) = setup("0 <= x & x <= 1 & 0 <= y & y <= 1");
        let s = MPoly::var(x) + MPoly::var(y);
        assert_eq!(integral_over_2d(&f, x, y, &s.pow(2)).unwrap(), rat(7, 6));
    }

    #[test]
    fn lagrange_is_exact() {
        // Interpolate y = x² − x + 2 through 3 nodes and recover it.
        let xs = [rat(0, 1), rat(1, 2), rat(2, 1)];
        let p = UPoly::from_ints(&[2, -1, 1]);
        let ys: Vec<Rat> = xs.iter().map(|x| p.eval(x)).collect();
        assert_eq!(lagrange_interpolate(&xs, &ys), p);
    }
}
