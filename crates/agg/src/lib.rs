//! FO+POLY+SUM — the aggregate constraint query language of Section 5.
//!
//! The paper's constructive answer to the aggregation problem: instead of
//! closing FO+POLY under volume (impossible — Section 4), extend it with a
//! *summation term-former over provably finite ranges*:
//!
//! * `END[y, φ(y, z⃗)]` — the endpoints of the maximal intervals composing
//!   the one-dimensional definable set `φ(D, z⃗)`; finite by o-minimality
//!   ([`cqa_core::decompose_1d`]).
//! * A *range-restricted expression* `ρ(w⃗, z⃗) ≡ (φ₁ | END[y, φ₂])` —
//!   tuples satisfying `φ₁` whose every coordinate is such an endpoint;
//!   guaranteed finite.
//! * A *deterministic formula* `γ(x, w⃗)` — a definable partial function
//!   (at most one `x` per `w⃗`; decidably checkable by QE,
//!   [`is_deterministic`]).
//! * The term `Σ_{ρ(w⃗,z⃗)} γ` — the sum of the bag `γ(ρ(D, z⃗))`.
//!
//! On top of the term-former this crate derives the classical SQL
//! aggregates over safe query outputs ([`aggregate`]), implements the
//! paper's Section-5 worked example (polygon area by triangulation,
//! [`polygon_area_sum_term`]), and realizes Theorem 3 — exact volumes of
//! semi-linear databases — two independent ways: the Lasserre engine of
//! `cqa-geom` and the sweep/integration construction from the paper's own
//! proof ([`semilinear_volume`]).

#![forbid(unsafe_code)]

mod aggregate;
mod grouping;
mod integral;
mod lang;
mod polygon;
mod volume;

pub use aggregate::{aggregate, aggregate_with_budget, Aggregate};
pub use grouping::{group_aggregate, group_aggregate_with_budget};
pub use integral::{average_over_2d, integral_over_2d};
pub use lang::{
    end_points, end_points_rational, end_points_with_budget, is_deterministic,
    is_deterministic_with_budget, AggError, Deterministic, RangeRestricted, SumTerm,
};
pub use polygon::{polygon_area_sum_term, polygon_area_via_language};
pub use volume::{
    semilinear_volume, semilinear_volume_formula, volume_by_sweep_2d, volume_with_fallback,
    VolumeOutcome, FALLBACK_DELTA,
};
