//! Grouping — the extension the paper's conclusion asks for.
//!
//! "It remains to discover … how to add grouping constructs to the
//! language." For *safe* (finite-output) queries the natural semantics is
//! SQL's: partition the output tuples by the values of the grouping
//! columns and aggregate the rest per group. Safety makes this
//! well-defined: the group keys form a finite set, so the result is again
//! a finite relation — closure is preserved.

use std::collections::BTreeMap;

use crate::aggregate::Aggregate;
use crate::lang::AggError;
use cqa_arith::Rat;
use cqa_core::{enumerate_finite_with_budget, Database, SafetyError};
use cqa_logic::budget::EvalBudget;
use cqa_logic::{Formula, SlotMap};
use cqa_poly::{MPoly, Var};

/// `GROUP BY`-style aggregation: evaluates the (safe) query `q` with
/// output columns `free`, partitions tuples by the `group_by` columns
/// (which must be a subset of `free`, else
/// [`AggError::GroupByNotInOutput`]), and applies `agg` to the `value`
/// term within each group.
///
/// Returns `(key, aggregate)` pairs sorted by key. Empty groups do not
/// occur (keys come from actual tuples), so `AVG`/`MIN`/`MAX` are total.
pub fn group_aggregate(
    db: &Database,
    q: &Formula,
    free: &[Var],
    group_by: &[Var],
    value: &MPoly,
    agg: Aggregate,
) -> Result<Vec<(Vec<Rat>, Rat)>, AggError> {
    group_aggregate_with_budget(db, q, free, group_by, value, agg, &EvalBudget::unlimited())
}

/// [`group_aggregate`] under a cooperative evaluation budget: one step per
/// partitioned tuple, plus whatever QE and enumeration charge.
pub fn group_aggregate_with_budget(
    db: &Database,
    q: &Formula,
    free: &[Var],
    group_by: &[Var],
    value: &MPoly,
    agg: Aggregate,
    budget: &EvalBudget,
) -> Result<Vec<(Vec<Rat>, Rat)>, AggError> {
    // Resolve each grouping column to its position in the output row up
    // front; a missing column is the caller's error, not a panic.
    let key_idx: Vec<usize> = group_by
        .iter()
        .map(|g| {
            free.iter()
                .position(|v| v == g)
                .ok_or_else(|| AggError::GroupByNotInOutput(format!("{g:?}")))
        })
        .collect::<Result<_, _>>()?;
    let expanded = db.expand(q).map_err(|e| AggError::Db(e.to_string()))?;
    let qf = cqa_qe::eliminate_with_budget(&expanded, budget)?;
    let tuples = enumerate_finite_with_budget(&qf, free, budget).map_err(|e| match e {
        SafetyError::Infinite => AggError::Db("grouping over an infinite set".into()),
        e => AggError::from(e),
    })?;

    // Partition by key. The ordered map both deduplicates keys in
    // O(log #groups) per tuple and hands the groups back already sorted.
    let slots = SlotMap::from_vars(free);
    let mut groups: BTreeMap<Vec<Rat>, Vec<Rat>> = BTreeMap::new();
    for t in &tuples {
        budget.check()?;
        let key: Vec<Rat> = key_idx.iter().map(|&i| t[i].clone()).collect();
        let val = value.eval(&slots.assignment(t));
        groups.entry(key).or_default().push(val);
    }

    groups
        .into_iter()
        .map(|(key, vals)| {
            let n = vals.len();
            let reduced = match agg {
                Aggregate::Count => Rat::from(n as i64),
                Aggregate::Sum => vals.into_iter().fold(Rat::zero(), |a, b| a + b),
                Aggregate::Avg => {
                    vals.into_iter().fold(Rat::zero(), |a, b| a + b) / Rat::from(n as i64)
                }
                // Groups are created with their first value, so `min`/`max`
                // of an entry is always defined; the error arm is defensive.
                Aggregate::Min => vals
                    .into_iter()
                    .min()
                    .ok_or_else(|| AggError::Db("MIN of an empty group".into()))?,
                Aggregate::Max => vals
                    .into_iter()
                    .max()
                    .ok_or_else(|| AggError::Db("MAX of an empty group".into()))?,
            };
            Ok((key, reduced))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;
    use cqa_logic::parse_formula_with;

    fn sales_db() -> Database {
        let mut db = Database::new();
        // Sales(region, amount)
        db.add_finite_relation(
            "Sales",
            vec![
                vec![rat(1, 1), rat(10, 1)],
                vec![rat(1, 1), rat(20, 1)],
                vec![rat(2, 1), rat(5, 1)],
                vec![rat(2, 1), rat(7, 1)],
                vec![rat(2, 1), rat(9, 1)],
                vec![rat(3, 1), rat(100, 1)],
            ],
        )
        .unwrap();
        db
    }

    #[test]
    fn group_sums() {
        let mut db = sales_db();
        let r = db.vars_mut().intern("r");
        let a = db.vars_mut().intern("a");
        let q = parse_formula_with("Sales(r, a)", db.vars_mut()).unwrap();
        let out = group_aggregate(&db, &q, &[r, a], &[r], &MPoly::var(a), Aggregate::Sum).unwrap();
        assert_eq!(
            out,
            vec![
                (vec![rat(1, 1)], rat(30, 1)),
                (vec![rat(2, 1)], rat(21, 1)),
                (vec![rat(3, 1)], rat(100, 1)),
            ]
        );
    }

    #[test]
    fn group_counts_and_avg() {
        let mut db = sales_db();
        let r = db.vars_mut().intern("r");
        let a = db.vars_mut().intern("a");
        let q = parse_formula_with("Sales(r, a)", db.vars_mut()).unwrap();
        let counts =
            group_aggregate(&db, &q, &[r, a], &[r], &MPoly::var(a), Aggregate::Count).unwrap();
        assert_eq!(counts[0].1, rat(2, 1));
        assert_eq!(counts[1].1, rat(3, 1));
        let avgs = group_aggregate(&db, &q, &[r, a], &[r], &MPoly::var(a), Aggregate::Avg).unwrap();
        assert_eq!(avgs[0].1, rat(15, 1));
        assert_eq!(avgs[1].1, rat(7, 1));
    }

    #[test]
    fn grouping_respects_where_clause() {
        let mut db = sales_db();
        let r = db.vars_mut().intern("r");
        let a = db.vars_mut().intern("a");
        let q = parse_formula_with("Sales(r, a) & a >= 9", db.vars_mut()).unwrap();
        let out = group_aggregate(&db, &q, &[r, a], &[r], &MPoly::var(a), Aggregate::Max).unwrap();
        assert_eq!(
            out,
            vec![
                (vec![rat(1, 1)], rat(20, 1)),
                (vec![rat(2, 1)], rat(9, 1)),
                (vec![rat(3, 1)], rat(100, 1)),
            ]
        );
    }

    #[test]
    fn group_by_all_columns_is_identity_count() {
        let mut db = sales_db();
        let r = db.vars_mut().intern("r");
        let a = db.vars_mut().intern("a");
        let q = parse_formula_with("Sales(r, a)", db.vars_mut()).unwrap();
        let out =
            group_aggregate(&db, &q, &[r, a], &[r, a], &MPoly::var(a), Aggregate::Count).unwrap();
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|(_, c)| *c == rat(1, 1)));
    }

    #[test]
    fn grouping_on_constraint_derived_keys() {
        // Group keys produced by a constraint query (roots of a quadratic).
        let mut db = Database::new();
        db.define("K", &["k"], "k*k - 3*k + 2 = 0").unwrap(); // k ∈ {1, 2}
        db.add_finite_relation("V", vec![vec![rat(1, 1)], vec![rat(2, 1)], vec![rat(3, 1)]])
            .unwrap();
        let k = db.vars_mut().get("k").unwrap();
        let v = db.vars_mut().intern("v");
        // Pairs (k, v) with v > k.
        let q = parse_formula_with("K(k) & V(v) & v > k", db.vars_mut()).unwrap();
        let out =
            group_aggregate(&db, &q, &[k, v], &[k], &MPoly::var(v), Aggregate::Count).unwrap();
        assert_eq!(
            out,
            vec![(vec![rat(1, 1)], rat(2, 1)), (vec![rat(2, 1)], rat(1, 1))]
        );
    }

    #[test]
    fn group_by_column_outside_output_is_a_typed_error() {
        let mut db = sales_db();
        let r = db.vars_mut().intern("r");
        let a = db.vars_mut().intern("a");
        let z = db.vars_mut().intern("z");
        let q = parse_formula_with("Sales(r, a)", db.vars_mut()).unwrap();
        let err =
            group_aggregate(&db, &q, &[r, a], &[z], &MPoly::var(a), Aggregate::Sum).unwrap_err();
        assert!(matches!(err, AggError::GroupByNotInOutput(_)), "{err}");
    }

    #[test]
    fn infinite_grouping_rejected() {
        let mut db = Database::new();
        db.define("S", &["x"], "0 <= x & x <= 1").unwrap();
        let x = db.vars_mut().get("x").unwrap();
        let q = parse_formula_with("S(x)", db.vars_mut()).unwrap();
        assert!(group_aggregate(&db, &q, &[x], &[x], &MPoly::var(x), Aggregate::Count).is_err());
    }
}
