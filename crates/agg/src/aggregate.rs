//! Classical SQL aggregates over safe (finite-output) constraint queries.
//!
//! Lemma 4 of the paper: FO+POLY+SUM expresses the cardinality of any SAF
//! query output, and the sum/average of a deterministic function over it.
//! Here the aggregates are provided directly over [`Database`] queries,
//! using [`cqa_core::enumerate_finite`] for the safety check and
//! enumeration.

use crate::lang::AggError;
use cqa_arith::Rat;
use cqa_core::{enumerate_finite_with_budget, Database};
use cqa_logic::budget::EvalBudget;
use cqa_logic::{Formula, SlotMap};
use cqa_poly::{MPoly, Var};

/// A classical aggregate operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregate {
    /// Number of tuples.
    Count,
    /// Sum of the value term over all tuples.
    Sum,
    /// Average (sum / count); errors on the empty set.
    Avg,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
}

/// Evaluates `agg` of the polynomial `value` term over the (finite) output
/// of the query `q` with output columns `free`.
///
/// Errors with [`AggError::Db`] when the output is infinite (the aggregate
/// would be unsafe — exactly what the range-restriction syntax of
/// FO+POLY+SUM rules out statically) and on `AVG`/`MIN`/`MAX` of an empty
/// output.
pub fn aggregate(
    db: &Database,
    q: &Formula,
    free: &[Var],
    value: &MPoly,
    agg: Aggregate,
) -> Result<Rat, AggError> {
    aggregate_with_budget(db, q, free, value, agg, &EvalBudget::unlimited())
}

/// [`aggregate`] under a cooperative evaluation budget; returns
/// [`AggError::Budget`] when the deadline, step or atom limit trips.
pub fn aggregate_with_budget(
    db: &Database,
    q: &Formula,
    free: &[Var],
    value: &MPoly,
    agg: Aggregate,
    budget: &EvalBudget,
) -> Result<Rat, AggError> {
    let expanded = db.expand(q).map_err(|e| AggError::Db(e.to_string()))?;
    let qf = cqa_qe::eliminate_with_budget(&expanded, budget)?;
    let tuples = enumerate_finite_with_budget(&qf, free, budget)?;
    let slots = SlotMap::from_vars(free);
    let values: Vec<Rat> = tuples
        .iter()
        .map(|t| value.eval(&slots.assignment(t)))
        .collect();
    match agg {
        Aggregate::Count => Ok(Rat::from(values.len() as i64)),
        Aggregate::Sum => Ok(values.into_iter().fold(Rat::zero(), |a, b| a + b)),
        Aggregate::Avg => {
            if values.is_empty() {
                return Err(AggError::Db("AVG of an empty set".into()));
            }
            let n = Rat::from(values.len() as i64);
            Ok(values.into_iter().fold(Rat::zero(), |a, b| a + b) / n)
        }
        Aggregate::Min => values
            .into_iter()
            .min()
            .ok_or_else(|| AggError::Db("MIN of an empty set".into())),
        Aggregate::Max => values
            .into_iter()
            .max()
            .ok_or_else(|| AggError::Db("MAX of an empty set".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;
    use cqa_logic::parse_formula_with;

    fn setup() -> (Database, Vec<Var>) {
        let mut db = Database::new();
        db.add_finite_relation("U", vec![vec![rat(1, 1)], vec![rat(2, 1)], vec![rat(7, 2)]])
            .unwrap();
        let x = db.vars_mut().intern("x");
        (db, vec![x])
    }

    #[test]
    fn count_sum_avg() {
        let (mut db, free) = setup();
        let q = parse_formula_with("U(x)", db.vars_mut()).unwrap();
        let x = free[0];
        let idty = MPoly::var(x);
        assert_eq!(
            aggregate(&db, &q, &free, &idty, Aggregate::Count).unwrap(),
            rat(3, 1)
        );
        assert_eq!(
            aggregate(&db, &q, &free, &idty, Aggregate::Sum).unwrap(),
            rat(13, 2)
        );
        assert_eq!(
            aggregate(&db, &q, &free, &idty, Aggregate::Avg).unwrap(),
            rat(13, 6)
        );
        assert_eq!(
            aggregate(&db, &q, &free, &idty, Aggregate::Min).unwrap(),
            rat(1, 1)
        );
        assert_eq!(
            aggregate(&db, &q, &free, &idty, Aggregate::Max).unwrap(),
            rat(7, 2)
        );
    }

    #[test]
    fn aggregates_of_derived_values() {
        let (mut db, free) = setup();
        let q = parse_formula_with("U(x) & x >= 2", db.vars_mut()).unwrap();
        let x = free[0];
        // Σ x² over {2, 7/2} = 4 + 49/4 = 65/4.
        let sq = MPoly::var(x).pow(2);
        assert_eq!(
            aggregate(&db, &q, &free, &sq, Aggregate::Sum).unwrap(),
            rat(65, 4)
        );
    }

    #[test]
    fn unsafe_aggregate_rejected() {
        let mut db = Database::new();
        db.define("S", &["x"], "0 <= x & x <= 1").unwrap();
        let x = db.vars_mut().get("x").unwrap();
        let q = parse_formula_with("S(x)", db.vars_mut()).unwrap();
        let r = aggregate(&db, &q, &[x], &MPoly::var(x), Aggregate::Sum);
        assert!(matches!(r, Err(AggError::Db(_))));
    }

    #[test]
    fn empty_set_semantics() {
        let (mut db, free) = setup();
        let q = parse_formula_with("U(x) & x > 100", db.vars_mut()).unwrap();
        let x = free[0];
        let idty = MPoly::var(x);
        assert_eq!(
            aggregate(&db, &q, &free, &idty, Aggregate::Count).unwrap(),
            rat(0, 1)
        );
        assert_eq!(
            aggregate(&db, &q, &free, &idty, Aggregate::Sum).unwrap(),
            rat(0, 1)
        );
        assert!(aggregate(&db, &q, &free, &idty, Aggregate::Avg).is_err());
        assert!(aggregate(&db, &q, &free, &idty, Aggregate::Min).is_err());
    }

    #[test]
    fn multi_column_aggregates() {
        let mut db = Database::new();
        db.add_finite_relation(
            "P",
            vec![vec![rat(0, 1), rat(1, 1)], vec![rat(2, 1), rat(3, 1)]],
        )
        .unwrap();
        let x = db.vars_mut().intern("x");
        let y = db.vars_mut().intern("y");
        let q = parse_formula_with("P(x, y)", db.vars_mut()).unwrap();
        // Σ (x·y) = 0 + 6.
        let prod = MPoly::var(x) * MPoly::var(y);
        assert_eq!(
            aggregate(&db, &q, &[x, y], &prod, Aggregate::Sum).unwrap(),
            rat(6, 1)
        );
    }

    #[test]
    fn aggregate_over_constraint_defined_finite_set() {
        // A finite set defined by constraints, not tuples: roots of a
        // quadratic with rational roots.
        let mut db = Database::new();
        db.define("R", &["x"], "x*x - 3*x + 2 = 0").unwrap();
        let x = db.vars_mut().get("x").unwrap();
        let q = parse_formula_with("R(x)", db.vars_mut()).unwrap();
        assert_eq!(
            aggregate(&db, &q, &[x], &MPoly::var(x), Aggregate::Sum).unwrap(),
            rat(3, 1) // 1 + 2
        );
    }
}
