//! The paper's Section-5 worked example: the area of a convex polygon in
//! FO+POLY+SUM.
//!
//! The paper's program: compute the vertices of `P` (definable in FO+POLY:
//! `a` is a vertex iff `a ∉ conv(P − {a})`), the adjacency relation
//! `ν_P(x⃗, y⃗)`, a range-restricted triangle query `ρ(x⃗, y⃗, z⃗)` whose
//! finite output is a *fan triangulation* anchored at the lexicographically
//! minimal vertex, and a deterministic `γ` computing each triangle's area
//! by the shoelace-style determinant
//! `(a₁b₂ − a₂b₁ + a₂c₁ − a₁c₂ + b₁c₂ − c₂b₁)/2`. The term
//! `Σ_ρ γ` is the polygon's area.
//!
//! [`polygon_area_via_language`] runs that pipeline literally — the
//! triangle list is produced as the output of the range-restricted
//! expression and each area by evaluating the deterministic formula through
//! the FO+POLY+SUM machinery. [`polygon_area_sum_term`] is the direct
//! geometric transcription used as its cross-check.

use crate::lang::{AggError, Deterministic};
use cqa_arith::Rat;
use cqa_core::Database;
#[cfg(test)]
use cqa_geom::polygon_area;
use cqa_geom::{convex_hull, triangulate_fan, Point2};
use cqa_logic::parse_formula_with;

/// Area of the convex hull of the given points, computed by the fan
/// triangulation + determinant summation the paper's program constructs.
pub fn polygon_area_sum_term(points: &[Point2]) -> Rat {
    let hull = convex_hull(points);
    if hull.len() < 3 {
        return Rat::zero();
    }
    let tris = triangulate_fan(&hull);
    let mut total = Rat::zero();
    for [a, b, c] in &tris {
        // (a1·b2 − a2·b1 + a2·c1 − a1·c2 + b1·c2 − b2·c1)/2, absolute.
        let twice =
            &a.0 * &b.1 - &a.1 * &b.0 + &a.1 * &c.0 - &a.0 * &c.1 + &b.0 * &c.1 - &b.1 * &c.0;
        total += twice.abs() / Rat::from(2i64);
    }
    total
}

/// Area of the convex hull of `points`, with each triangle's area computed
/// by evaluating the paper's *deterministic formula* `γ(v, x⃗, y⃗, z⃗)`
/// (`v` = area of the triangle `x⃗y⃗z⃗`) through the FO+POLY+SUM
/// evaluation machinery, summed over the fan triangulation (the output of
/// the paper's range-restricted triangle query).
pub fn polygon_area_via_language(points: &[Point2]) -> Result<Rat, AggError> {
    let hull = convex_hull(points);
    if hull.len() < 3 {
        return Ok(Rat::zero());
    }
    let tris = triangulate_fan(&hull);

    // γ(v; ax, ay, bx, by, cx, cy): v is the signed doubled area halved —
    // determinism is syntactic (v is defined by an equation).
    let mut db = Database::new();
    let names = ["ax", "ay", "bx", "by", "cx", "cy"];
    let in_vars: Vec<_> = names.iter().map(|n| db.vars_mut().intern(n)).collect();
    let v = db.vars_mut().intern("v");
    let gamma_src = "2*v = ax*by - ay*bx + ay*cx - ax*cy + bx*cy - by*cx";
    let gamma = Deterministic {
        out_var: v,
        in_vars: in_vars.clone(),
        formula: parse_formula_with(gamma_src, db.vars_mut()).unwrap(),
    };
    debug_assert!(crate::lang::is_deterministic(&gamma).unwrap_or(false));

    let mut total = Rat::zero();
    for [a, b, c] in &tris {
        let args = vec![
            a.0.clone(),
            a.1.clone(),
            b.0.clone(),
            b.1.clone(),
            c.0.clone(),
            c.1.clone(),
        ];
        let area = gamma.apply(&db, &args)?.ok_or(AggError::GammaPartial)?;
        total += area.abs();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_arith::rat;

    fn pt(x: i64, y: i64) -> Point2 {
        (rat(x, 1), rat(y, 1))
    }

    #[test]
    fn unit_square() {
        let pts = [pt(0, 0), pt(1, 0), pt(1, 1), pt(0, 1)];
        assert_eq!(polygon_area_sum_term(&pts), rat(1, 1));
        assert_eq!(polygon_area_via_language(&pts).unwrap(), rat(1, 1));
    }

    #[test]
    fn triangle_with_interior_points() {
        let pts = [pt(0, 0), pt(4, 0), pt(0, 4), pt(1, 1), pt(2, 1)];
        assert_eq!(polygon_area_sum_term(&pts), rat(8, 1));
        assert_eq!(polygon_area_via_language(&pts).unwrap(), rat(8, 1));
    }

    #[test]
    fn hexagon_matches_shoelace() {
        let pts = [pt(2, 0), pt(4, 1), pt(4, 3), pt(2, 4), pt(0, 3), pt(0, 1)];
        let hull = convex_hull(&pts);
        let direct = polygon_area(&hull);
        assert_eq!(polygon_area_sum_term(&pts), direct);
        assert_eq!(polygon_area_via_language(&pts).unwrap(), direct);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(polygon_area_sum_term(&[pt(0, 0), pt(1, 1)]), rat(0, 1));
        assert_eq!(polygon_area_via_language(&[pt(0, 0)]).unwrap(), rat(0, 1));
        // Collinear points: hull degenerates to a segment.
        assert_eq!(
            polygon_area_sum_term(&[pt(0, 0), pt(1, 1), pt(2, 2), pt(3, 3)]),
            rat(0, 1)
        );
    }

    #[test]
    fn rational_coordinates() {
        let pts = [
            (rat(0, 1), rat(0, 1)),
            (rat(1, 2), rat(0, 1)),
            (rat(1, 2), rat(1, 3)),
            (rat(0, 1), rat(1, 3)),
        ];
        assert_eq!(polygon_area_sum_term(&pts), rat(1, 6));
        assert_eq!(polygon_area_via_language(&pts).unwrap(), rat(1, 6));
    }
}
