//! Offline stand-in for the slice of `proptest` this workspace uses.
//!
//! Provided: the [`proptest!`] test macro, [`Strategy`] with `prop_map` /
//! `prop_recursive` / `boxed`, range and tuple strategies, [`any`],
//! [`collection::vec`], [`prop_oneof!`], [`Just`], `prop_assert*` /
//! `prop_assume!`, [`ProptestConfig`], and [`TestCaseError`].
//!
//! Deliberately missing vs. crates-io proptest: input shrinking (a failure
//! reports the raw generated inputs instead of a minimal counterexample),
//! persistence of failing seeds (`*.proptest-regressions` files are
//! ignored), and the full strategy combinator zoo. Test generation is
//! deterministic: case `k` of every test draws from a fixed seed mixed with
//! `k`, so failures reproduce across runs.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases (crates-io proptest defaults to 256; kept smaller so the
    /// exact-arithmetic suites stay fast in CI).
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not counted as a run.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Alias used by helper functions in the repo's tests
/// (`fn agree(..) -> Result<(), TestCaseError>`).
pub type TestCaseResult = Result<(), TestCaseError>;

// ---------------------------------------------------------------------------
// deterministic test RNG
// ---------------------------------------------------------------------------

/// The runner's random source: SplitMix64, seeded per test case.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for case number `case` (fixed global seed mixed in).
    pub fn deterministic(case: u64) -> TestRng {
        TestRng {
            state: 0xC0FF_EE00_D15E_A5E5 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `span` (> 0).
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
        wide % span
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating random values of one type.
///
/// Unlike crates-io proptest there is no value-tree/shrinking layer: a
/// strategy is just a deterministic function of the runner RNG.
pub trait Strategy: 'static {
    /// The generated type.
    type Value: fmt::Debug + 'static;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug + 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { inner: self, f }
    }

    /// Recursive structures: `self` is the leaf case, `branch` wraps a
    /// strategy for smaller instances into one for larger instances, and
    /// nesting is capped at `depth`. `_desired_size` and `_expected_branch`
    /// are accepted for source compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            level = Union {
                arms: vec![leaf.clone(), branch(level).boxed()],
            }
            .boxed();
        }
        level
    }

    /// Type-erased, cheaply clonable form.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased [`Strategy`] (`Arc`-backed, so `Clone` is cheap).
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug + 'static,
    F: Fn(S::Value) -> O + 'static,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    /// The equally-weighted alternatives.
    pub arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A uniform union of the given alternatives (non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: fmt::Debug + 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u128) as usize;
        self.arms[i].generate(rng)
    }
}

/// The strategy generating exactly one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: fmt::Debug + Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Integer ranges are strategies.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// Tuples of strategies generate tuples of values.
macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: fmt::Debug + Sized + 'static {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// The full-range strategy for `T` (`any::<i64>()` etc.).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// collections
// ---------------------------------------------------------------------------

/// `prop::collection` — vector strategies.
pub mod collection {
    use super::{fmt, Range, Strategy, TestRng};

    /// Element-count specification for [`vec`]: a fixed size or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// macros
// ---------------------------------------------------------------------------

/// Declares property tests: zero or more `#[test] fn name(x in strategy, ..)
/// { body }` items, optionally preceded by
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                let mut passed: u32 = 0;
                let mut rejected: u64 = 0;
                let mut case: u64 = 0;
                while passed < config.cases {
                    assert!(
                        rejected < u64::from(config.cases) * 32 + 1024,
                        "proptest: too many rejected cases ({} rejects, {} passes)",
                        rejected,
                        passed
                    );
                    let mut rng = $crate::TestRng::deterministic(case);
                    case += 1;
                    let ($($arg,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                    let inputs = ::std::format!(
                        ::core::concat!($(::core::stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => rejected += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            ::core::panic!(
                                "proptest case #{} failed: {}\n  inputs: {}",
                                case - 1, msg, inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform choice among listed strategies (all generating the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts inside a property test; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} ({})",
                    ::core::stringify!($cond),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
                            ::core::stringify!($left), ::core::stringify!($right), l, r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}\n  {}",
                            ::core::stringify!($left), ::core::stringify!($right), l, r,
                            ::std::format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything tests normally import.
pub mod prelude {
    /// The crate itself, so `prop::collection::vec(..)` resolves.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<i64>> {
        prop::collection::vec(-5i64..=5, 0..4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in -5i64..=5, b in 0usize..4, c in 0u32..3) {
            prop_assert!((-5..=5).contains(&a));
            prop_assert!(b < 4);
            prop_assert!(c < 3);
        }

        #[test]
        fn vec_lengths(v in small_vec()) {
            prop_assert!(v.len() < 4);
            for x in &v {
                prop_assert!((-5..=5).contains(x), "element {}", x);
            }
        }

        #[test]
        fn assume_rejects(n in 0i64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![(0i64..5).prop_map(|v| v * 2), 100i64..105]) {
            prop_assert!(x % 2 == 0 || (100..105).contains(&x));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        fn leaves_in_range(t: &Tree) -> bool {
            match t {
                Tree::Leaf(v) => (0..10).contains(v),
                Tree::Node(cs) => cs.iter().all(leaves_in_range),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                prop::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = crate::TestRng::deterministic(0);
        for case in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3, "case {case}: depth {}", depth(&t));
            assert!(leaves_in_range(&t), "case {case}: leaf out of range");
            rng = crate::TestRng::deterministic(case + 1);
        }
    }
}
